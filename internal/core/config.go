package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/crypto"
	"repro/internal/trace"
)

// Options selects the library configuration. The exported fields mirror
// the configuration axes of Table 1 of the paper: UseMACs, AllBig,
// Batching and DynamicClients.
type Options struct {
	// F is the number of Byzantine faults to tolerate; the replica group
	// must have 3F+1 members.
	F int

	// UseMACs authenticates protocol messages with per-pair MACs and
	// authenticators instead of public-key signatures ("mac"/"nomac").
	UseMACs bool

	// AllBig treats every request as "big": clients multicast request
	// bodies to all replicas and the primary forwards only digests
	// ("allbig"/"noallbig"). This is the big-request threshold of 0
	// preferred by the original implementation.
	AllBig bool

	// BigThreshold is the size in bytes at which a request is treated
	// as big when AllBig is false. Zero means "never big".
	BigThreshold int

	// Batching enables request batching behind a congestion window
	// ("batch"/"nobatch").
	Batching bool

	// CongestionWindow is the number of agreed-but-unexecuted sequence
	// numbers the primary allows before deferring new pre-prepares
	// (only meaningful with Batching).
	CongestionWindow int

	// MaxBatch bounds how many requests one pre-prepare carries. With
	// AdaptiveBatching it is the controller's ceiling.
	MaxBatch int

	// AdaptiveBatching replaces the static MaxBatch bound with a
	// self-tuning congestion window: the primary sizes the next
	// pre-prepare from the observed batch occupancy and commit latency
	// (AIMD — grow additively while batches run full and commit latency
	// stays flat, halve on latency inflation). The static knobs stay as
	// hard bounds: MaxBatch is the ceiling, 1 the floor, and
	// MaxBatchBytes still caps the datagram. Only meaningful with
	// Batching; purely primary-local (never part of the replicated
	// contract). The live window is observable as ReplicaInfo.BatchWindow
	// and the pbft_batch_window gauge.
	AdaptiveBatching bool

	// MaxBatchBytes bounds a pre-prepare's payload size so it fits in
	// one datagram. Inline (non-big) request bodies count in full;
	// digest-only entries cost ~44 bytes — this is why the big-request
	// optimization interacts with batching (§2.1).
	MaxBatchBytes int

	// DynamicClients enables the Join/Leave membership extension
	// ("sta"/"nosta").
	DynamicClients bool

	// MaxNodes bounds the node table (replicas + clients) when
	// DynamicClients is enabled.
	MaxNodes int

	// SessionStaleAfter is the age beyond which an idle session may be
	// evicted to make room for a new Join.
	SessionStaleAfter time.Duration

	// TentativeExecution executes requests after prepare and marks
	// replies tentative (clients then need 2f+1 matching replies).
	TentativeExecution bool

	// CheckpointInterval is K: a checkpoint every K sequence numbers.
	CheckpointInterval uint64

	// LogWindow is L, the high-watermark distance; 0 means 2K.
	LogWindow uint64

	// StateSize is the size in bytes of the replicated state region.
	StateSize int64

	// PageSize is the state page granularity (0 = state.DefaultPageSize).
	PageSize int

	// ViewChangeTimeout is how long a backup waits for a pending
	// request to execute before starting a view change.
	ViewChangeTimeout time.Duration

	// StatusInterval is the period of status gossip (drives
	// retransmission and lag detection).
	StatusInterval time.Duration

	// HelloInterval is the period at which clients blindly retransmit
	// their session establishment (the authenticator retransmission
	// timer of §2.3).
	HelloInterval time.Duration

	// RequestTimeout is how long a client waits for a reply quorum
	// before retransmitting to all replicas.
	RequestTimeout time.Duration

	// MaxTimeDrift is the tolerance of the default non-determinism
	// validator (§2.5).
	MaxTimeDrift time.Duration

	// ValidateNonDet disables the time-delta validation entirely when
	// false (the blunt fix discussed in §2.5).
	ValidateNonDet bool

	// VerifyWorkers sizes the ingress verification pool: the goroutines
	// that authenticate and decode inbound packets in parallel before
	// they reach the protocol loop. 0 means GOMAXPROCS.
	VerifyWorkers int

	// AsyncReap overlaps agreement with application execution: instead of
	// draining the execution engine before returning to the protocol
	// loop, completed applies are reaped — and their replies sealed and
	// sent, still strictly in sequence order — by a dedicated reaper
	// goroutine, so agreement on sequence n+1 runs while the application
	// is still working on n. Barrier points (checkpoints, membership
	// operations, view-change rollback, state transfer, shutdown) force a
	// full drain exactly as before, which is what keeps checkpoint
	// digests byte-identical to synchronous reaping at any shard count.
	// Purely local (never part of the replicated contract).
	AsyncReap bool

	// ExecShards sizes the sharded execution engine: the workers that
	// apply committed operations behind the ordered commit stream. An
	// application implementing Sharder gets non-conflicting operations
	// applied concurrently across shards; everything else (and every
	// operation at 1 shard) applies serially in commit order. 0 or 1
	// selects the serial configuration. Unlike ClientWindow, the shard
	// count is a purely local tuning knob — replicas with different
	// values stay digest-identical (see Sharder).
	ExecShards int

	// ClientWindow is W, the per-client window of outstanding request
	// timestamps a replica tracks for deduplication and reply caching.
	// A pipelined client can keep up to W requests in flight; requests
	// whose timestamp falls at or below the window floor are dropped as
	// duplicates. Duplicate detection decides execution, so W is part of
	// the replicated-state contract and must match across the group.
	// 0 means DefaultClientWindow.
	ClientWindow uint64

	// MaxClientSessions bounds the per-client state a replica carries for
	// a massive client population. It caps two structures:
	//
	//   - the MAC session table (local): at most this many clients hold
	//     live session keys at once; establishing one more evicts the
	//     least-recently-active session. An evicted client's identity
	//     survives — its next periodic hello re-establishes the session.
	//   - the deduplication windows (replicated): at each checkpoint,
	//     windows beyond the cap are compacted — oldest first by highest
	//     executed timestamp — down to a tombstone that keeps exact
	//     replay protection but drops the cached replies.
	//
	// The compaction half runs deterministically at checkpoints and feeds
	// the checkpoint digest, so like ClientWindow this value is part of
	// the replicated-state contract and must match across the group.
	// 0 means DefaultMaxClientSessions; negative disables both bounds.
	MaxClientSessions int

	// DataDir roots the replica's durable state on disk: a WAL-backed
	// page image plus a manifest persisting the protocol-critical
	// minimum (stable checkpoint digest + seq, view, membership
	// generation, client dedup windows) at every stable checkpoint. A
	// replica restarted over the same directory rejoins at its last
	// stable checkpoint and fetches only the delta via state transfer.
	// Empty (the default) keeps the replica diskless; the durable hooks
	// then cost one nil check. Local, excluded from deployment files —
	// each replica names its own directory.
	DataDir string `json:"-"`

	// Tracer receives typed protocol events (view changes, checkpoints,
	// state transfer, batches, commits, client sessions) from the
	// replica's protocol loop. Nil (the default) disables tracing at
	// zero hot-loop cost. Tracing is a purely local observer: it never
	// influences protocol behaviour and is excluded from deployment
	// files. See Tracer for the blocking rules hooks must obey.
	Tracer Tracer `json:"-"`

	// Recorder is the per-request flight recorder: the replica stamps
	// phase marks (ingress arrival, verification, loop dispatch, batch
	// enqueue, quorums, execution, reply) keyed by (clientID, timestamp)
	// and publishes completed timelines plus protocol events into its
	// bounded rings (see internal/trace). One recorder serves exactly
	// one replica. Nil (the default) disables recording: every stamp
	// site costs one nil check and allocates nothing. Purely local,
	// excluded from deployment files.
	Recorder *trace.Recorder `json:"-"`
}

// DefaultClientWindow is the per-client pipeline window replicas track
// when Options.ClientWindow is zero.
const DefaultClientWindow = 16

// DefaultMaxClientSessions is the session-table and dedup-window bound in
// force when Options.MaxClientSessions is zero.
const DefaultMaxClientSessions = 4096

// DefaultOptions returns the configuration the original library shipped
// with: every optimization enabled (first row of Table 1), f = 1.
func DefaultOptions() Options {
	return Options{
		F:                  1,
		UseMACs:            true,
		AllBig:             true,
		Batching:           true,
		AdaptiveBatching:   true,
		CongestionWindow:   1,
		MaxBatch:           64,
		MaxBatchBytes:      8000,
		DynamicClients:     false,
		MaxNodes:           256,
		SessionStaleAfter:  10 * time.Minute,
		TentativeExecution: true,
		CheckpointInterval: 128,
		StateSize:          16 << 20,
		ViewChangeTimeout:  2 * time.Second,
		StatusInterval:     150 * time.Millisecond,
		HelloInterval:      500 * time.Millisecond,
		RequestTimeout:     500 * time.Millisecond,
		MaxTimeDrift:       time.Minute,
		ValidateNonDet:     true,
		ExecShards:         1,
		AsyncReap:          true,
		ClientWindow:       DefaultClientWindow,
	}
}

// WithAdaptiveBatching returns a copy of the options with the adaptive
// batch-sizing controller enabled or disabled (chainable).
func (o Options) WithAdaptiveBatching(on bool) Options {
	o.AdaptiveBatching = on
	return o
}

// WithAsyncReap returns a copy of the options with asynchronous reaping of
// the execution engine enabled or disabled (chainable).
func (o Options) WithAsyncReap(on bool) Options {
	o.AsyncReap = on
	return o
}

// WithExecShards returns a copy of the options with the execution engine
// sized to n shards (chainable, like Robust).
func (o Options) WithExecShards(n int) Options {
	o.ExecShards = n
	return o
}

// WithMaxClientSessions returns a copy of the options with the session and
// dedup-window bound set (chainable). Part of the replicated contract:
// pass the same value to every replica.
func (o Options) WithMaxClientSessions(n int) Options {
	o.MaxClientSessions = n
	return o
}

// WithTracer returns a copy of the options with the given event tracer
// installed (chainable, like WithExecShards). A nil tracer disables
// tracing.
func (o Options) WithTracer(t Tracer) Options {
	o.Tracer = t
	return o
}

// WithRecorder returns a copy of the options with the given per-request
// flight recorder installed (chainable). A nil recorder disables
// per-request tracing.
func (o Options) WithRecorder(rec *trace.Recorder) Options {
	o.Recorder = rec
	return o
}

// WithDataDir returns a copy of the options with durable replica state
// rooted at dir (chainable). An empty dir keeps the replica diskless.
func (o Options) WithDataDir(dir string) Options {
	o.DataDir = dir
	return o
}

// execShards resolves the effective execution shard count.
func (o *Options) execShards() int {
	if o.ExecShards > 0 {
		return o.ExecShards
	}
	return 1
}

// verifyWorkers resolves the effective ingress pool size.
func (o *Options) verifyWorkers() int {
	if o.VerifyWorkers > 0 {
		return o.VerifyWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Robust mirrors the paper's "most robust" configuration
// (nomac, noallbig): signatures everywhere and full request bodies through
// the primary, trading throughput for fault resilience (§4.1).
func (o Options) Robust() Options {
	o.UseMACs = false
	o.AllBig = false
	return o
}

// NodeInfo is the public identity of one node (replica or pre-provisioned
// static client).
type NodeInfo struct {
	ID     uint32
	Addr   string
	PubKey crypto.PublicKey
}

// Config is the static deployment description every node starts from:
// the replica group and, without dynamic membership, the client list.
type Config struct {
	Opts     Options
	Replicas []NodeInfo
	// Clients lists the pre-provisioned clients (static membership).
	// Their IDs must not collide with replica IDs.
	Clients []NodeInfo
}

// Validate checks group sizing and identifier rules.
func (c *Config) Validate() error {
	if c.Opts.F < 1 {
		return errors.New("core: F must be >= 1")
	}
	if got, want := len(c.Replicas), 3*c.Opts.F+1; got < want {
		return fmt.Errorf("core: need %d replicas to tolerate %d faults, have %d", want, c.Opts.F, got)
	}
	for i, ri := range c.Replicas {
		if ri.ID != uint32(i) {
			return fmt.Errorf("core: replica %d must have ID %d, has %d", i, i, ri.ID)
		}
	}
	seen := make(map[uint32]bool, len(c.Clients))
	for _, ci := range c.Clients {
		if int(ci.ID) < len(c.Replicas) {
			return fmt.Errorf("core: client ID %d collides with replica IDs", ci.ID)
		}
		if seen[ci.ID] {
			return fmt.Errorf("core: duplicate client ID %d", ci.ID)
		}
		seen[ci.ID] = true
	}
	if c.Opts.CheckpointInterval == 0 {
		return errors.New("core: CheckpointInterval must be positive")
	}
	if c.Opts.StateSize <= 0 {
		return errors.New("core: StateSize must be positive")
	}
	if c.Opts.VerifyWorkers < 0 {
		return errors.New("core: VerifyWorkers must be >= 0")
	}
	if c.Opts.ExecShards < 0 {
		return errors.New("core: ExecShards must be >= 0")
	}
	return nil
}

// N returns the replica group size.
func (c *Config) N() int { return len(c.Replicas) }

// Quorum returns the 2f+1 quorum size.
func (c *Config) Quorum() int { return 2*c.Opts.F + 1 }

// Primary returns the primary replica of a view.
func (c *Config) Primary(view uint64) uint32 {
	return uint32(view % uint64(len(c.Replicas)))
}

// LogWindow returns L (defaults to twice the checkpoint interval).
func (c *Config) LogWindow() uint64 {
	if c.Opts.LogWindow != 0 {
		return c.Opts.LogWindow
	}
	return 2 * c.Opts.CheckpointInterval
}

// ClientWindow returns W, the per-client pipeline window (defaults to
// DefaultClientWindow).
func (c *Config) ClientWindow() uint64 {
	if c.Opts.ClientWindow != 0 {
		return c.Opts.ClientWindow
	}
	return DefaultClientWindow
}

// MaxClientSessions resolves the session/dedup-window bound: the default
// when unset, unlimited (0) when negative.
func (c *Config) MaxClientSessions() int {
	switch {
	case c.Opts.MaxClientSessions > 0:
		return c.Opts.MaxClientSessions
	case c.Opts.MaxClientSessions < 0:
		return 0
	default:
		return DefaultMaxClientSessions
	}
}

// IsBig reports whether a request body of the given size takes the
// big-request path.
func (c *Config) IsBig(size int) bool {
	if c.Opts.AllBig {
		return true
	}
	return c.Opts.BigThreshold > 0 && size >= c.Opts.BigThreshold
}
