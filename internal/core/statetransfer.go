package core

import (
	"time"

	"repro/internal/crypto"
	"repro/internal/state"
	"repro/internal/trace"
	"repro/internal/wire"
)

// metaLevel marks a Fetch for the middleware metadata blob instead of a
// Merkle node or page.
const metaLevel = ^uint32(0)

// syncState tracks a state transfer in progress.
type syncState struct {
	seq        uint64
	digest     crypto.Digest // composite (agreement digest)
	root       crypto.Digest
	metaDigest crypto.Digest
	proof      [][]byte
	syncer     *state.Syncer
	meta       []byte // verified metadata blob, nil until fetched
	peerRR     uint32 // round-robin cursor over replicas
	lastAsk    time.Time
}

// startSync begins (or retargets) a state transfer to the proven stable
// checkpoint seq.
func (r *Replica) startSync(seq uint64, digest, root, metaDigest crypto.Digest, proof [][]byte) {
	if r.sync != nil && r.sync.seq >= seq {
		return
	}
	if seq <= r.lastStable && seq <= r.lastExec {
		return
	}
	// Reap and integrate every in-flight span (the install will replace
	// the client windows wholesale), then quiesce the execution engine,
	// detached reads included: new reads are refused while syncing
	// (execReadOnly's r.sync guard), and a read queued earlier must not
	// observe the region mid-install and seal a torn reply.
	r.reapApplies()
	r.exec.Drain()
	r.stats.StateTransfers++
	if r.tracer != nil {
		// A retarget of a running transfer fires another Start: the
		// trace shows every checkpoint the replica chased.
		r.tracer.OnStateTransfer(StateTransferEvent{
			Replica: r.id, Phase: StateTransferStart, Seq: seq, Pages: r.stats.PagesFetched,
		})
	}
	r.recEvent(trace.EvStateTransferStart, r.view, seq)
	r.sync = &syncState{
		seq:        seq,
		digest:     digest,
		root:       root,
		metaDigest: metaDigest,
		proof:      proof,
		syncer:     state.NewSyncer(r.region.LeafDigests(), root),
		peerRR:     uint32(r.now().UnixNano()) % uint32(r.n),
	}
	r.askSync()
}

// nextPeer round-robins over the other replicas.
func (r *Replica) nextPeer(s *syncState) uint32 {
	for {
		s.peerRR = (s.peerRR + 1) % uint32(r.n)
		if s.peerRR != r.id {
			return s.peerRR
		}
	}
}

// askSync (re)issues the outstanding fetches.
func (r *Replica) askSync() {
	s := r.sync
	if s == nil {
		return
	}
	s.lastAsk = r.now()
	if s.meta == nil {
		f := wire.Fetch{Seq: s.seq, Level: metaLevel, Replica: r.id}
		r.sendToReplica(r.nextPeer(s), r.sealNone(wire.MTFetch, f.Marshal()))
	}
	for _, ref := range s.syncer.Pending() {
		f := wire.Fetch{Seq: s.seq, Level: uint32(ref.Level), Index: uint32(ref.Index), Replica: r.id}
		r.sendToReplica(r.nextPeer(s), r.sealNone(wire.MTFetch, f.Marshal()))
	}
	r.maybeFinishSync()
}

// resendSync retries a stalled transfer.
func (r *Replica) resendSync(now time.Time) {
	if r.sync == nil {
		return
	}
	if now.Sub(r.sync.lastAsk) > r.cfg.Opts.StatusInterval {
		r.askSync()
	}
}

// onFetch serves state-transfer requests from a retained snapshot.
func (r *Replica) onFetch(env *wire.Envelope) {
	f, err := wire.UnmarshalFetch(env.Payload)
	if err != nil || int(f.Replica) >= r.n {
		return
	}
	ck := r.ckpts[f.Seq]
	if ck == nil || !ck.mine {
		// The requested checkpoint is gone (garbage-collected past it).
		// Hand the requester the current stable proof so it retargets.
		if f.Seq < r.lastStable {
			for _, raw := range r.stableProof {
				_ = r.conn.Send(r.cfg.Replicas[f.Replica].Addr, raw)
			}
		}
		return
	}
	switch {
	case f.Level == metaLevel:
		resp := wire.StatePage{Seq: f.Seq, Index: metaLevel, Data: ck.meta}
		r.sendToReplica(f.Replica, r.sealNone(wire.MTStatePage, resp.Marshal()))
	case f.Level == 0:
		data, err := ck.snap.Page(int(f.Index))
		if err != nil {
			return
		}
		resp := wire.StatePage{Seq: f.Seq, Index: f.Index, Data: data}
		r.sendToReplica(f.Replica, r.sealNone(wire.MTStatePage, resp.Marshal()))
	default:
		children, err := ck.snap.Children(int(f.Level), int(f.Index))
		if err != nil {
			return
		}
		resp := wire.StateNode{Seq: f.Seq, Level: f.Level, Index: f.Index, Children: children}
		r.sendToReplica(f.Replica, r.sealNone(wire.MTStateNode, resp.Marshal()))
	}
}

// onStateNode feeds a fetched Merkle node into the syncer.
func (r *Replica) onStateNode(env *wire.Envelope) {
	s := r.sync
	if s == nil {
		return
	}
	m, err := wire.UnmarshalStateNode(env.Payload)
	if err != nil || m.Seq != s.seq {
		return
	}
	ref := state.NodeRef{Level: int(m.Level), Index: int(m.Index)}
	if err := s.syncer.OnNode(ref, m.Children); err != nil {
		return // forged or stale; the retry timer will re-ask elsewhere
	}
	r.askSyncChildren()
}

// askSyncChildren issues fetches for newly discovered differences without
// waiting for the retry timer.
func (r *Replica) askSyncChildren() {
	s := r.sync
	if s == nil {
		return
	}
	for _, ref := range s.syncer.Pending() {
		f := wire.Fetch{Seq: s.seq, Level: uint32(ref.Level), Index: uint32(ref.Index), Replica: r.id}
		r.sendToReplica(r.nextPeer(s), r.sealNone(wire.MTFetch, f.Marshal()))
	}
	r.maybeFinishSync()
}

// onStatePage feeds a fetched page (or the metadata blob) into the sync.
func (r *Replica) onStatePage(env *wire.Envelope) {
	s := r.sync
	if s == nil {
		return
	}
	m, err := wire.UnmarshalStatePage(env.Payload)
	if err != nil || m.Seq != s.seq {
		return
	}
	if m.Index == metaLevel {
		if s.meta == nil && crypto.DigestOf(m.Data) == s.metaDigest {
			s.meta = m.Data
		}
		r.maybeFinishSync()
		return
	}
	apply, err := s.syncer.OnPage(int(m.Index), m.Data)
	if err != nil || !apply {
		return
	}
	r.stats.PagesFetched++
	if err := r.region.ApplyPage(int(m.Index), m.Data); err != nil {
		return
	}
	r.maybeFinishSync()
}

// maybeFinishSync installs the transferred checkpoint once both the pages
// and the metadata blob are verified.
func (r *Replica) maybeFinishSync() {
	s := r.sync
	if s == nil || s.meta == nil || !s.syncer.Done() {
		return
	}
	if err := r.unmarshalMeta(s.meta); err != nil {
		// The meta blob matched its digest but failed to parse: the
		// agreed checkpoint would have to be corrupt. Abandon the sync.
		r.sync = nil
		if r.tracer != nil {
			r.tracer.OnStateTransfer(StateTransferEvent{
				Replica: r.id, Phase: StateTransferAbort, Seq: s.seq, Pages: r.stats.PagesFetched,
			})
		}
		r.recEvent(trace.EvStateTransferAbort, r.view, s.seq)
		return
	}
	r.sync = nil
	r.lastExec = s.seq
	if r.committedContig < s.seq {
		r.committedContig = s.seq
	}
	if r.seq < s.seq {
		r.seq = s.seq
	}
	// Install the checkpoint record as ours so we can serve fetches and
	// vote for it.
	snap := r.region.Snapshot(s.seq)
	ck := &ckptRecord{
		seq:        s.seq,
		digest:     s.digest,
		root:       s.root,
		metaDigest: s.metaDigest,
		meta:       s.meta,
		snap:       snap,
		votes:      make(map[uint32][]byte),
		mine:       true,
		stable:     true,
	}
	if prev := r.ckpts[s.seq]; prev != nil {
		for id, raw := range prev.votes {
			ck.votes[id] = raw
		}
	}
	r.ckpts[s.seq] = ck
	r.lastStable = s.seq
	r.stableProof = s.proof
	r.recEvent(trace.EvStateTransferFinish, r.view, s.seq)
	if r.tracer != nil {
		r.tracer.OnStateTransfer(StateTransferEvent{
			Replica: r.id, Phase: StateTransferFinish, Seq: s.seq, Pages: r.stats.PagesFetched,
		})
		// The installed checkpoint is stable by proof: surface it on the
		// checkpoint stream too, like a makeStable promotion.
		r.tracer.OnCheckpoint(CheckpointEvent{Replica: r.id, Seq: s.seq, Digest: s.digest, Stable: true})
	}
	r.persistStable(ck)
	r.gcLog()
	// Entries above the checkpoint may already be agreed in the log;
	// resume execution.
	r.tryExecute()
}

// onStatus reacts to a peer's progress gossip (decoded and authenticated
// by the ingress pipeline) with retransmissions.
func (r *Replica) onStatus(st *wire.Status) {
	// Peer lags on stable checkpoints: hand it the proof so it can
	// state-transfer.
	if st.LastStable < r.lastStable && len(r.stableProof) > 0 {
		for _, raw := range r.stableProof {
			_ = r.conn.Send(r.cfg.Replicas[st.Replica].Addr, raw)
		}
	}
	// Peer is behind in the current view: retransmit our log messages
	// for a bounded window above its execution point.
	if st.View == r.view && st.LastExec < r.lastExec && !r.inViewChange {
		limit := st.LastExec + 16
		if limit > r.lastExec {
			limit = r.lastExec
		}
		for s := st.LastExec + 1; s <= limit; s++ {
			e := r.log[s]
			if e == nil || e.pp == nil {
				continue
			}
			// Retransmit the pre-prepare in its original form: for
			// big requests this carries digests only — the §2.4
			// robustness gap is preserved deliberately.
			_ = r.conn.Send(r.cfg.Replicas[st.Replica].Addr, e.ppRaw)
			if e.sentPrepare {
				p := wire.Prepare{View: e.view, Seq: e.seq, Digest: e.digest, Replica: r.id}
				r.sendToReplica(st.Replica, r.sealToReplicas(wire.MTPrepare, p.Marshal()))
			}
			if e.sentCommit {
				c := wire.Commit{View: e.view, Seq: e.seq, Digest: e.digest, Replica: r.id}
				r.sendToReplica(st.Replica, r.sealToReplicas(wire.MTCommit, c.Marshal()))
			}
		}
	}
	// Peer is in an older view: let it catch up with the new-view proof.
	if st.View < r.view && r.newViewRaw != nil {
		_ = r.conn.Send(r.cfg.Replicas[st.Replica].Addr, r.newViewRaw)
	}
	// If we are mid view change, remind peers of our vote.
	if r.inViewChange && st.View <= r.vcTarget {
		if votes := r.viewChanges[r.vcTarget]; votes != nil {
			if own := votes[r.id]; own != nil {
				_ = r.conn.Send(r.cfg.Replicas[st.Replica].Addr, own.raw)
			}
		}
	}
}
