package core

import (
	"math/rand"
	"testing"
	"time"
)

// TestBatchControllerGrowsWhenFullAndFlat: full batches with flat commit
// latency walk the window up to the ceiling and never past it.
func TestBatchControllerGrowsWhenFullAndFlat(t *testing.T) {
	bc := newBatchController(16)
	if bc.size() != 1 {
		t.Fatalf("initial window = %d, want 1 (slow start)", bc.size())
	}
	for i := 0; i < 100; i++ {
		bc.observeBatch(bc.size()) // always full
		bc.observeCommit(2 * time.Millisecond)
		if w := bc.size(); w < 1 || w > 16 {
			t.Fatalf("window %d escaped [1,16] at step %d", w, i)
		}
	}
	if bc.size() != 16 {
		t.Fatalf("window = %d after sustained full batches, want ceiling 16", bc.size())
	}
}

// TestBatchControllerHoldsOnPartialBatches: batches below the window leave
// it alone — occupancy, not time, drives growth.
func TestBatchControllerHoldsOnPartialBatches(t *testing.T) {
	bc := newBatchController(64)
	for i := 0; i < 8; i++ { // grow a little first
		bc.observeBatch(bc.size())
		bc.observeCommit(time.Millisecond)
	}
	w := bc.size()
	if w <= 1 {
		t.Fatalf("window did not grow during warmup: %d", w)
	}
	for i := 0; i < 50; i++ {
		bc.observeBatch(w - 1) // never full
		bc.observeCommit(time.Millisecond)
	}
	if bc.size() != w {
		t.Fatalf("window moved from %d to %d on partial batches", w, bc.size())
	}
}

// TestBatchControllerShrinksOnLatencyInflation: a sustained latency blowup
// halves the window (multiplicative decrease) and the floor holds at 1.
func TestBatchControllerShrinksOnLatencyInflation(t *testing.T) {
	bc := newBatchController(64)
	for i := 0; i < 200; i++ { // earn the full window at 1ms commits
		bc.observeBatch(bc.size())
		bc.observeCommit(time.Millisecond)
	}
	if bc.size() != 64 {
		t.Fatalf("warmup window = %d, want 64", bc.size())
	}
	// Latency inflates 20x: the EMA crosses the inflation bound and the
	// window halves (repeatedly, past each holdoff, until the floor).
	for i := 0; i < 500; i++ {
		bc.observeCommit(20 * time.Millisecond)
		if w := bc.size(); w < 1 || w > 64 {
			t.Fatalf("window %d escaped [1,64] at step %d", w, i)
		}
	}
	if bc.size() >= 64 {
		t.Fatalf("window = %d after sustained inflation, want a decrease", bc.size())
	}
	if bc.size() < 1 {
		t.Fatalf("window fell under the floor: %d", bc.size())
	}
}

// TestBatchControllerBoundsUnderBurstyWorkload: a randomized burst/idle/
// spike mix never drives the window outside [1, ceiling]. This is the
// satellite's safety property: whatever the signals do, the static knobs
// bound the controller.
func TestBatchControllerBoundsUnderBurstyWorkload(t *testing.T) {
	const ceiling = 32
	rng := rand.New(rand.NewSource(7))
	bc := newBatchController(ceiling)
	for i := 0; i < 20000; i++ {
		switch rng.Intn(3) {
		case 0: // burst: full batches
			bc.observeBatch(bc.size())
		case 1: // trickle: tiny batches
			bc.observeBatch(1 + rng.Intn(bc.size()))
		case 2: // nothing proposed this tick
		}
		if rng.Intn(2) == 0 {
			lat := time.Duration(rng.Intn(int(50 * time.Millisecond)))
			bc.observeCommit(lat)
		}
		if w := bc.size(); w < 1 || w > ceiling {
			t.Fatalf("window %d escaped [1,%d] at step %d", w, ceiling, i)
		}
	}
}

// TestBatchControllerRebaselines: after a durable latency regime change
// (e.g. a slower disk), the baseline relaxes toward the new normal and
// the window can grow again instead of shrinking forever.
func TestBatchControllerRebaselines(t *testing.T) {
	bc := newBatchController(64)
	for i := 0; i < 100; i++ {
		bc.observeBatch(bc.size())
		bc.observeCommit(time.Millisecond)
	}
	// New regime: 10ms commits, permanently. Give the baseline time to
	// re-anchor, then check growth resumes on full batches.
	for i := 0; i < 2000; i++ {
		bc.observeCommit(10 * time.Millisecond)
	}
	w := bc.size()
	for i := 0; i < 200; i++ {
		bc.observeBatch(bc.size())
		bc.observeCommit(10 * time.Millisecond)
	}
	if bc.size() <= w {
		t.Fatalf("window stuck at %d after regime change, want growth above %d", bc.size(), w)
	}
}
