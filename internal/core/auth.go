package core

import (
	"repro/internal/crypto"
	"repro/internal/wire"
)

// JoinSender is the envelope sender id used by clients that have not yet
// been admitted (their Join requests are authenticated by the public key
// embedded in the join body, not by the node table).
const JoinSender = ^uint32(0)

// sealToReplicas authenticates an envelope destined to the replica group.
// With MACs it carries an authenticator of one tag per replica; otherwise
// a signature.
func (r *Replica) sealToReplicas(t wire.MsgType, payload []byte) *wire.Envelope {
	env := &wire.Envelope{Type: t, Sender: r.id, Payload: payload}
	if r.cfg.Opts.UseMACs {
		env.Kind = wire.AuthMAC
		env.Auth = crypto.ComputeAuthenticator(r.replicaKeys, env.SignedBytes())
	} else {
		env.Kind = wire.AuthSig
		env.Sig = r.kp.Sign(env.SignedBytes())
	}
	return env
}

// sealSigned authenticates an envelope with a signature regardless of the
// MAC option. View changes, new views, checkpoints, join challenges and
// session hellos are always signed: they outlive the session keys of the
// moment (they are replayed to recovering replicas as proofs).
func (r *Replica) sealSigned(t wire.MsgType, payload []byte) *wire.Envelope {
	env := &wire.Envelope{Type: t, Sender: r.id, Payload: payload, Kind: wire.AuthSig}
	env.Sig = r.kp.Sign(env.SignedBytes())
	return env
}

// sealToClient authenticates a reply to one client: a single-tag
// authenticator under the client's session key, or a signature.
func (r *Replica) sealToClient(t wire.MsgType, payload []byte, client *nodeEntry) *wire.Envelope {
	env := &wire.Envelope{Type: t, Sender: r.id, Payload: payload}
	if r.cfg.Opts.UseMACs && client.HasSession {
		env.Kind = wire.AuthMAC
		env.Auth = crypto.ComputeAuthenticator([]crypto.SessionKey{client.Session}, env.SignedBytes())
	} else {
		env.Kind = wire.AuthSig
		env.Sig = r.kp.Sign(env.SignedBytes())
	}
	return env
}

// sealNone wraps unauthenticated payloads (state transfer data, verified
// against agreed digests instead).
func (r *Replica) sealNone(t wire.MsgType, payload []byte) *wire.Envelope {
	return &wire.Envelope{Type: t, Sender: r.id, Payload: payload, Kind: wire.AuthNone}
}

// verifyFromReplica authenticates an envelope claimed to come from a
// fellow replica.
func (r *Replica) verifyFromReplica(env *wire.Envelope) bool {
	if int(env.Sender) >= r.n || env.Sender == r.id {
		return false
	}
	switch env.Kind {
	case wire.AuthMAC:
		return env.Auth.VerifyEntry(int(r.id), r.replicaKeys[env.Sender], env.SignedBytes())
	case wire.AuthSig:
		return crypto.Verify(r.cfg.Replicas[env.Sender].PubKey, env.SignedBytes(), env.Sig)
	default:
		return false
	}
}

// verifySignedReplica authenticates an always-signed replica envelope
// (view change, checkpoint, ...). It is usable on stored raw envelopes.
func (r *Replica) verifySignedReplica(env *wire.Envelope) bool {
	if int(env.Sender) >= r.n {
		return false
	}
	if env.Kind != wire.AuthSig {
		return false
	}
	return crypto.Verify(r.cfg.Replicas[env.Sender].PubKey, env.SignedBytes(), env.Sig)
}

// verifyFromClient authenticates a client envelope against the node table
// (the §3.1 redirection-table lookup happens before any cryptography).
func (r *Replica) verifyFromClient(env *wire.Envelope) (*nodeEntry, bool) {
	entry := r.nodes.get(env.Sender)
	if entry == nil || int(env.Sender) < r.n {
		return nil, false
	}
	switch env.Kind {
	case wire.AuthMAC:
		if !entry.HasSession {
			// No session key material (e.g. this replica restarted and
			// the client's hello has not been retransmitted yet — the
			// §2.3 stall). The request cannot be authenticated.
			return nil, false
		}
		return entry, env.Auth.VerifyEntry(int(r.id), entry.Session, env.SignedBytes())
	case wire.AuthSig:
		return entry, crypto.Verify(entry.Pub, env.SignedBytes(), env.Sig)
	default:
		return nil, false
	}
}
