package core

import (
	"bytes"

	"repro/internal/crypto"
	"repro/internal/wire"
)

// JoinSender is the envelope sender id used by clients that have not yet
// been admitted (their Join requests are authenticated by the public key
// embedded in the join body, not by the node table).
const JoinSender = ^uint32(0)

// sealToReplicas authenticates an envelope destined to the replica group.
// With MACs it carries an authenticator of one tag per replica; otherwise
// a signature.
func (r *Replica) sealToReplicas(t wire.MsgType, payload []byte) *wire.Envelope {
	env := &wire.Envelope{Type: t, Sender: r.id, Payload: payload}
	if r.cfg.Opts.UseMACs {
		env.SealMAC(r.replicaKeys)
	} else {
		env.SealSig(r.kp)
	}
	return env
}

// sealSigned authenticates an envelope with a signature regardless of the
// MAC option. View changes, new views, checkpoints, join challenges and
// session hellos are always signed: they outlive the session keys of the
// moment (they are replayed to recovering replicas as proofs).
func (r *Replica) sealSigned(t wire.MsgType, payload []byte) *wire.Envelope {
	env := &wire.Envelope{Type: t, Sender: r.id, Payload: payload}
	env.SealSig(r.kp)
	return env
}

// sealToClient authenticates a reply to one client: a single-tag
// authenticator under the client's session key, or a signature.
func (r *Replica) sealToClient(t wire.MsgType, payload []byte, client *nodeEntry) *wire.Envelope {
	return r.sealWithSession(t, payload, client.Session, r.cfg.Opts.UseMACs && client.HasSession)
}

// sealWithSession is sealToClient over snapshotted session material: safe
// off the protocol loop (the read-only path seals on a shard worker from
// values captured at submission time).
func (r *Replica) sealWithSession(t wire.MsgType, payload []byte, session crypto.SessionKey, useMAC bool) *wire.Envelope {
	env := &wire.Envelope{Type: t, Sender: r.id, Payload: payload}
	if useMAC {
		env.SealMAC1(session)
	} else {
		env.SealSig(r.kp)
	}
	return env
}

// sealNone wraps unauthenticated payloads (state transfer data, verified
// against agreed digests instead).
func (r *Replica) sealNone(t wire.MsgType, payload []byte) *wire.Envelope {
	return &wire.Envelope{Type: t, Sender: r.id, Payload: payload, Kind: wire.AuthNone}
}

// Inbound verification lives in the ingress pipeline (ingress.go): the
// worker pool authenticates every packet against immutable replica key
// material and the clientAuthTable before the protocol loop sees it.

// verifySignedReplica authenticates an always-signed replica envelope
// (view change, checkpoint, ...). The protocol loop uses it on stored raw
// envelopes (view-change votes inside a new-view proof); live traffic is
// verified by the ingress workers with the same routine.
func (r *Replica) verifySignedReplica(env *wire.Envelope) bool {
	return r.ingress.verifySignedReplica(env)
}

// pubKeyEqual reports whether two node identities are the same key pair.
func pubKeyEqual(a, b crypto.PublicKey) bool {
	return bytes.Equal(a.Sign, b.Sign) && bytes.Equal(a.DH, b.DH)
}

// reverifyClient re-runs client authentication inside the protocol loop
// for packets the ingress could not clear: the packet may have raced a
// session install or join whose effects the loop has applied by now, so
// verification at processing time (the pre-pipeline semantics) is
// authoritative.
func (r *Replica) reverifyClient(env *wire.Envelope, client *nodeEntry) bool {
	return verifyClientEnvelope(env, r.id, clientAuthOf(client))
}
