package core

import (
	"testing"

	"repro/internal/wire"
)

func TestClientWindowDedup(t *testing.T) {
	const w = 4
	cw := newClientWindow()

	// Out-of-order execution within the window: 3 before 1.
	cw.record(3, &wire.Reply{Timestamp: 3}, w)
	if cw.executed(1, w) {
		t.Fatal("ts 1 is inside the window and unexecuted")
	}
	cw.record(1, &wire.Reply{Timestamp: 1}, w)
	if !cw.executed(1, w) || !cw.executed(3, w) {
		t.Fatal("recorded timestamps must read back executed")
	}
	if cw.executed(2, w) || cw.executed(4, w) {
		t.Fatal("unexecuted in-window timestamps must stay executable")
	}

	// Slide the window: maxTS=10 puts the floor at 6.
	cw.record(10, &wire.Reply{Timestamp: 10}, w)
	if !cw.executed(6, w) {
		t.Fatal("at the floor counts as executed (too old)")
	}
	if cw.executed(7, w) {
		t.Fatal("ts 7 is inside (floor, maxTS] and unexecuted")
	}
	if cw.cachedReply(1) != nil || cw.cachedReply(3) != nil {
		t.Fatal("replies below the floor must be pruned")
	}
	if cw.cachedReply(10) == nil {
		t.Fatal("in-window reply must be retained")
	}
	if len(cw.done) != 1 {
		t.Fatalf("window retains %d entries, want 1", len(cw.done))
	}
}

func TestClientWindowBelowWZero(t *testing.T) {
	cw := newClientWindow()
	cw.record(2, nil, 16)
	// maxTS < W: the floor is 0, nothing is "too old", and ts 1 is still
	// executable. Guards the unsigned-underflow edge.
	if cw.executed(1, 16) {
		t.Fatal("ts 1 must remain executable while maxTS < W")
	}
	if !cw.executed(2, 16) {
		t.Fatal("recorded nil-reply timestamp still counts as executed")
	}
}

// TestPipelineWindowReplicaDedup drives the replica-side execution path the
// way a pipelined client's ordering would: duplicates inside and below the
// window must not re-execute, gaps must stay executable.
func TestPipelineWindowReplicaDedup(t *testing.T) {
	cfg, rkeys, _ := testConfig(t, 1, 1)
	cfg.Opts.ClientWindow = 4
	r := newTestReplica(t, cfg, 0, rkeys[0])
	defer func() {
		r.Start()
		r.Stop()
	}()

	exec := func(ts uint64) *wire.Reply {
		e := newEntry(1)
		req := &wire.Request{ClientID: 100, Timestamp: ts, Op: []byte("op")}
		r.submitRequest(req, NonDetValues{}, false, e)
		r.reapApplies()
		if len(e.replies) == 0 {
			return nil // deduplicated: nothing was scheduled
		}
		return e.replies[0]
	}

	if exec(3) == nil || exec(1) == nil {
		t.Fatal("fresh in-window timestamps must execute (any order)")
	}
	if exec(3) != nil || exec(1) != nil {
		t.Fatal("duplicates inside the window must not re-execute")
	}
	if exec(10) == nil {
		t.Fatal("fresh high timestamp must execute")
	}
	if exec(5) != nil {
		t.Fatal("timestamp below the slid floor must be a duplicate")
	}
	if exec(8) == nil {
		t.Fatal("unexecuted timestamp inside the slid window must execute")
	}
	if got := r.stats.Executed; got != 4 {
		t.Fatalf("Executed = %d, want 4", got)
	}
}
