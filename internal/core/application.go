package core

import (
	"time"

	"repro/internal/state"
)

// NonDetValues carries the agreed non-deterministic inputs of a batch: the
// primary's wall clock and a shared random seed (§2.5). All replicas
// execute with identical values.
type NonDetValues struct {
	Time time.Time
	Rand [32]byte
}

// Application is the service replicated by the middleware. Execute runs in
// the replica's event loop; it must be deterministic given (op, nd) and
// the current content of the state region, and it must route every state
// mutation through the region (or a VFS on top of it).
type Application interface {
	// Execute applies one ordered operation and returns the reply body.
	// readOnly marks the optimized read-only path: the operation must
	// not mutate state.
	Execute(op []byte, nd NonDetValues, readOnly bool) []byte
}

// Authorizer is implemented by applications that admit dynamic clients
// (§3.1). The identification buffer from the Join request is passed down;
// the application maps it to a stable principal (e.g. a user id). The
// middleware then guarantees a single live session per principal.
type Authorizer interface {
	// Authorize validates the application-level identification buffer
	// of a Join. ok=false denies the join.
	Authorize(appAuth []byte) (principal string, ok bool)
}

// StateUser is implemented by applications that need the state region
// handed to them before the replica starts (most applications; the SQL
// layer mounts its database file on it).
type StateUser interface {
	// AttachState gives the application its replicated memory region.
	AttachState(region *state.Region)
}
