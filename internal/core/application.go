package core

import (
	"time"

	"repro/internal/state"
)

// NonDetValues carries the agreed non-deterministic inputs of a batch: the
// primary's wall clock and a shared random seed (§2.5). All replicas
// execute with identical values.
type NonDetValues struct {
	Time time.Time
	Rand [32]byte
}

// Application is the service replicated by the middleware. Execute runs in
// the replica's event loop; it must be deterministic given (op, nd) and
// the current content of the state region, and it must route every state
// mutation through the region (or a VFS on top of it).
type Application interface {
	// Execute applies one ordered operation and returns the reply body.
	// readOnly marks the optimized read-only path: the operation must
	// not mutate state.
	Execute(op []byte, nd NonDetValues, readOnly bool) []byte
}

// Sharder is implemented by applications that opt into the sharded
// execution engine (Options.ExecShards > 1). Keys returns the conflict
// keyset of an operation: the set of logical entities the operation reads
// or writes. The engine runs operations with disjoint keysets
// concurrently on different shard workers and serializes operations that
// share a key in commit order; a nil/empty keyset marks the operation a
// barrier (it runs alone, after everything before it and before
// everything after it).
//
// An implementation must obey the determinism rules (see ARCHITECTURE.md):
//
//   - Keys must be a pure function of the operation bytes.
//   - Execute must be safe to call concurrently for operations with
//     disjoint keysets.
//   - Operations with disjoint keysets must commute at the byte level:
//     their state-region footprints are disjoint, and neither's reply nor
//     writes depend on whether the other ran first. Operations that
//     cannot satisfy this (whole-state scans, allocator-order-sensitive
//     writes) must return nil and take the barrier path.
//
// The shard count itself is NOT part of the replicated-state contract:
// replicas with different ExecShards values (including 1) produce
// identical reply streams and checkpoint digests, because conflicting
// operations are ordered identically everywhere and non-conflicting
// operations commute.
type Sharder interface {
	// Keys returns the operation's conflict keyset (nil = barrier).
	Keys(op []byte) [][]byte
}

// ShardObserver is implemented by applications that adapt their
// execution strategy to the engine's shard count (e.g. sqlstate routes
// shardable queries over private pagers only when queries can actually
// run concurrently). The replica calls it once, before Start.
type ShardObserver interface {
	// ObserveExecShards reports the engine's effective shard count.
	ObserveExecShards(shards int)
}

// Authorizer is implemented by applications that admit dynamic clients
// (§3.1). The identification buffer from the Join request is passed down;
// the application maps it to a stable principal (e.g. a user id). The
// middleware then guarantees a single live session per principal.
type Authorizer interface {
	// Authorize validates the application-level identification buffer
	// of a Join. ok=false denies the join.
	Authorize(appAuth []byte) (principal string, ok bool)
}

// StateUser is implemented by applications that need the state region
// handed to them before the replica starts (most applications; the SQL
// layer mounts its database file on it).
type StateUser interface {
	// AttachState gives the application its replicated memory region.
	AttachState(region *state.Region)
}
