package core

import (
	"repro/internal/crypto"
)

// Tracer receives typed protocol events from a replica. Install one
// through Options.Tracer (or Options.WithTracer) before the replica is
// built; a nil tracer costs the hot loop nothing beyond one predictable
// nil check per event site.
//
// Goroutine and blocking rules (see also ARCHITECTURE.md, "Observability"):
//
//   - Every hook fires on the replica's protocol-loop goroutine, after
//     the state transition it reports has been applied. Hooks therefore
//     observe events of one replica in a total order, and never
//     concurrently with each other.
//   - A hook MUST NOT block and MUST NOT call back into the replica
//     (Info, Inspect, Shutdown): the protocol loop is stalled for as long
//     as the hook runs, and Inspect from a hook deadlocks. Aggregate
//     cheaply (counters, ring buffers, non-blocking channel sends) and do
//     expensive work elsewhere.
//   - One Tracer instance may be shared by several replicas (the metrics
//     registry and the bench harness do this); every event carries the
//     reporting replica's id, but the hooks themselves must then be
//     safe for concurrent use.
type Tracer interface {
	// OnViewChange reports view-change progress: one Start when the
	// replica abandons its view and votes, one Install when it enters
	// the new view (the Install may arrive without a Start on replicas
	// that jump directly into a proven new view).
	OnViewChange(ViewChangeEvent)
	// OnCheckpoint reports a locally produced checkpoint (Stable=false)
	// and its later promotion by a 2f+1 proof (Stable=true).
	OnCheckpoint(CheckpointEvent)
	// OnStateTransfer reports state-transfer progress: Start, then
	// Finish or Abort. Retargeting mid-transfer emits another Start.
	OnStateTransfer(StateTransferEvent)
	// OnBatch reports one agreed batch handed to the execution engine.
	OnBatch(BatchEvent)
	// OnCommit reports one sequence number reaching its 2f+1 commit
	// certificate.
	OnCommit(CommitEvent)
	// OnClientSession reports client session lifecycle: MAC session
	// establishment, dynamic join/leave, and session eviction.
	OnClientSession(ClientSessionEvent)
}

// ViewChangePhase tags a ViewChangeEvent.
type ViewChangePhase uint8

const (
	// ViewChangeStart: the replica abandoned its view and broadcast a
	// view-change vote for Target.
	ViewChangeStart ViewChangePhase = iota
	// ViewChangeInstall: the replica entered view View (new-view message
	// validated, re-proposals accepted).
	ViewChangeInstall
)

// String renders the phase for logs and test failures.
func (p ViewChangePhase) String() string {
	switch p {
	case ViewChangeStart:
		return "start"
	case ViewChangeInstall:
		return "install"
	}
	return "unknown"
}

// ViewChangeEvent reports view-change progress.
type ViewChangeEvent struct {
	Replica uint32
	Phase   ViewChangePhase
	// View is the view in force after the event: the abandoned view for
	// Start, the newly installed view for Install.
	View uint64
	// Target is the view voted for (Start) or installed (Install).
	Target uint64
}

// CheckpointEvent reports checkpoint production and stabilization.
type CheckpointEvent struct {
	Replica uint32
	Seq     uint64
	// Digest is the composite state digest (region root + metadata).
	Digest crypto.Digest
	// Stable is false when the local snapshot is taken and true when a
	// 2f+1 proof promotes it (each checkpoint fires both, in order).
	Stable bool
}

// StateTransferPhase tags a StateTransferEvent.
type StateTransferPhase uint8

const (
	// StateTransferStart: the replica began fetching a proven remote
	// checkpoint (also fired when an in-progress transfer retargets to
	// a newer one).
	StateTransferStart StateTransferPhase = iota
	// StateTransferFinish: the transferred checkpoint was verified and
	// installed.
	StateTransferFinish
	// StateTransferAbort: the transfer was abandoned (corrupt metadata).
	StateTransferAbort
)

// String renders the phase for logs and test failures.
func (p StateTransferPhase) String() string {
	switch p {
	case StateTransferStart:
		return "start"
	case StateTransferFinish:
		return "finish"
	case StateTransferAbort:
		return "abort"
	}
	return "unknown"
}

// StateTransferEvent reports state-transfer progress.
type StateTransferEvent struct {
	Replica uint32
	Phase   StateTransferPhase
	// Seq is the sequence number of the checkpoint being transferred.
	Seq uint64
	// Pages is the cumulative count of state pages fetched by this
	// replica (meaningful on Finish).
	Pages uint64
}

// BatchEvent reports one agreed batch (pre-prepare) handed to execution.
type BatchEvent struct {
	Replica uint32
	View    uint64
	Seq     uint64
	// Requests is the number of requests in the batch.
	Requests int
	// Tentative marks execution after prepare but before commit (§2.1).
	Tentative bool
}

// CommitEvent reports a sequence number reaching its commit certificate.
type CommitEvent struct {
	Replica uint32
	View    uint64
	Seq     uint64
}

// ClientSessionKind tags a ClientSessionEvent.
type ClientSessionKind uint8

const (
	// SessionHello: a MAC session was (re-)established for the client.
	SessionHello ClientSessionKind = iota
	// SessionJoin: a dynamic client was admitted (§3.1).
	SessionJoin
	// SessionLeave: a dynamic client left.
	SessionLeave
	// SessionEvict: a session was evicted (staleness or single-session-
	// per-principal).
	SessionEvict
)

// String renders the kind for logs and test failures.
func (k ClientSessionKind) String() string {
	switch k {
	case SessionHello:
		return "hello"
	case SessionJoin:
		return "join"
	case SessionLeave:
		return "leave"
	case SessionEvict:
		return "evict"
	}
	return "unknown"
}

// ClientSessionEvent reports client session lifecycle.
type ClientSessionEvent struct {
	Replica  uint32
	ClientID uint32
	Kind     ClientSessionKind
}

// NopTracer implements Tracer with empty hooks. Embed it to implement
// only the hooks a tracer cares about.
type NopTracer struct{}

// OnViewChange implements Tracer.
func (NopTracer) OnViewChange(ViewChangeEvent) {}

// OnCheckpoint implements Tracer.
func (NopTracer) OnCheckpoint(CheckpointEvent) {}

// OnStateTransfer implements Tracer.
func (NopTracer) OnStateTransfer(StateTransferEvent) {}

// OnBatch implements Tracer.
func (NopTracer) OnBatch(BatchEvent) {}

// OnCommit implements Tracer.
func (NopTracer) OnCommit(CommitEvent) {}

// OnClientSession implements Tracer.
func (NopTracer) OnClientSession(ClientSessionEvent) {}

// traceClientSession is the one shared emission helper: session events
// fire from several membership paths.
func (r *Replica) traceClientSession(id uint32, kind ClientSessionKind) {
	if r.tracer != nil {
		r.tracer.OnClientSession(ClientSessionEvent{Replica: r.id, ClientID: id, Kind: kind})
	}
}
