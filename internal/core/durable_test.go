package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/crypto"
	"repro/internal/wire"
)

func testManifest() *durManifest {
	meta := []byte("meta-blob")
	metaDigest := crypto.DigestOf(meta)
	root := crypto.DigestOf([]byte("root"))
	return &durManifest{
		seq:        128,
		view:       3,
		restarts:   7,
		digest:     wire.CompositeStateDigest(root, metaDigest),
		root:       root,
		metaDigest: metaDigest,
		meta:       meta,
		proof:      [][]byte{[]byte("vote-a"), []byte("vote-b"), []byte("vote-c")},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testManifest()
	if err := writeManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := loadManifest(filepath.Join(dir, durManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("manifest not found after write")
	}
	if got.seq != want.seq || got.view != want.view || got.restarts != want.restarts {
		t.Fatalf("counters mismatch: %+v", got)
	}
	if got.digest != want.digest || got.root != want.root || got.metaDigest != want.metaDigest {
		t.Fatal("digest mismatch")
	}
	if string(got.meta) != string(want.meta) || len(got.proof) != 3 {
		t.Fatal("payload mismatch")
	}
}

func TestManifestMissing(t *testing.T) {
	m, err := loadManifest(filepath.Join(t.TempDir(), durManifestName))
	if err != nil || m != nil {
		t.Fatalf("missing manifest: got %v, %v", m, err)
	}
}

// TestManifestCorruptionRejected flips one byte at every offset: a
// corrupt manifest must be rejected, never half-loaded.
func TestManifestCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	if err := writeManifest(dir, testManifest()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, durManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := range raw {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x20
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if m, err := loadManifest(path); err == nil && m != nil {
			t.Fatalf("pos=%d: corrupt manifest loaded", pos)
		}
	}
	// Truncations must be rejected too.
	for cut := 0; cut < len(raw); cut++ {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if m, err := loadManifest(path); err == nil && m != nil {
			t.Fatalf("cut=%d: truncated manifest loaded", cut)
		}
	}
}

// TestManifestAtomicReplace overwrites an existing manifest and checks
// the tmp file never survives.
func TestManifestAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	first := testManifest()
	if err := writeManifest(dir, first); err != nil {
		t.Fatal(err)
	}
	second := testManifest()
	second.seq = 256
	meta := []byte("newer-meta")
	second.meta = meta
	second.metaDigest = crypto.DigestOf(meta)
	second.digest = wire.CompositeStateDigest(second.root, second.metaDigest)
	if err := writeManifest(dir, second); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, durManifestName+".tmp")); !os.IsNotExist(err) {
		t.Fatal("tmp manifest left behind")
	}
	got, err := loadManifest(filepath.Join(dir, durManifestName))
	if err != nil || got == nil {
		t.Fatal(err)
	}
	if got.seq != 256 {
		t.Fatalf("replace did not take: seq=%d", got.seq)
	}
}
