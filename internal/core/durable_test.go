package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/crypto"
	"repro/internal/wire"
)

func testManifest() *durManifest {
	meta := []byte("meta-blob")
	metaDigest := crypto.DigestOf(meta)
	root := crypto.DigestOf([]byte("root"))
	return &durManifest{
		seq:        128,
		view:       3,
		restarts:   7,
		digest:     wire.CompositeStateDigest(root, metaDigest),
		root:       root,
		metaDigest: metaDigest,
		meta:       meta,
		proof:      [][]byte{[]byte("vote-a"), []byte("vote-b"), []byte("vote-c")},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testManifest()
	if err := writeManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := loadManifest(filepath.Join(dir, durManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("manifest not found after write")
	}
	if got.seq != want.seq || got.view != want.view || got.restarts != want.restarts {
		t.Fatalf("counters mismatch: %+v", got)
	}
	if got.digest != want.digest || got.root != want.root || got.metaDigest != want.metaDigest {
		t.Fatal("digest mismatch")
	}
	if string(got.meta) != string(want.meta) || len(got.proof) != 3 {
		t.Fatal("payload mismatch")
	}
}

func TestManifestMissing(t *testing.T) {
	m, err := loadManifest(filepath.Join(t.TempDir(), durManifestName))
	if err != nil || m != nil {
		t.Fatalf("missing manifest: got %v, %v", m, err)
	}
}

// TestManifestCorruptionRejected flips one byte at every offset: a
// corrupt manifest must be rejected, never half-loaded.
func TestManifestCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	if err := writeManifest(dir, testManifest()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, durManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := range raw {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x20
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if m, err := loadManifest(path); err == nil && m != nil {
			t.Fatalf("pos=%d: corrupt manifest loaded", pos)
		}
	}
	// Truncations must be rejected too.
	for cut := 0; cut < len(raw); cut++ {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if m, err := loadManifest(path); err == nil && m != nil {
			t.Fatalf("cut=%d: truncated manifest loaded", cut)
		}
	}
}

// TestManifestLoadErrorClassification: validation failures are tagged
// errManifestInvalid (removal is safe); read failures are not (the
// file may hold valid state behind a transient error).
func TestManifestLoadErrorClassification(t *testing.T) {
	dir := t.TempDir()
	if err := writeManifest(dir, testManifest()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, durManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF // break the CRC
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadManifest(path); !errors.Is(err, errManifestInvalid) {
		t.Fatalf("corrupt manifest not tagged invalid: %v", err)
	}

	// A directory at the manifest path produces a read error (EISDIR)
	// that must NOT be classified as a validation failure.
	ioDir := t.TempDir()
	if err := os.Mkdir(filepath.Join(ioDir, durManifestName), 0o755); err != nil {
		t.Fatal(err)
	}
	_, err = loadManifest(filepath.Join(ioDir, durManifestName))
	if err == nil {
		t.Fatal("reading a directory as manifest succeeded")
	}
	if errors.Is(err, errManifestInvalid) {
		t.Fatalf("I/O error misclassified as validation failure: %v", err)
	}
}

// TestOpenDurableRemovesCorruptManifest: a manifest failing validation
// is deleted so the boot degrades to a clean first start.
func TestOpenDurableRemovesCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, durManifestName)
	if err := os.WriteFile(path, []byte("garbage-manifest-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := openDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	if d.man != nil {
		t.Fatal("corrupt manifest loaded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt manifest not removed")
	}
}

// TestOpenDurableReadErrorPreservesManifest: a transient read failure
// (simulated with a directory at the manifest path, which reads as
// EISDIR) must abort the open and leave the on-disk state untouched —
// deleting it would permanently destroy possibly-valid durable state.
func TestOpenDurableReadErrorPreservesManifest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, durManifestName)
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := openDurable(dir); err == nil {
		t.Fatal("openDurable succeeded over an unreadable manifest")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("unreadable manifest was removed: %v", err)
	}
}

// TestManifestAtomicReplace overwrites an existing manifest and checks
// the tmp file never survives.
func TestManifestAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	first := testManifest()
	if err := writeManifest(dir, first); err != nil {
		t.Fatal(err)
	}
	second := testManifest()
	second.seq = 256
	meta := []byte("newer-meta")
	second.meta = meta
	second.metaDigest = crypto.DigestOf(meta)
	second.digest = wire.CompositeStateDigest(second.root, second.metaDigest)
	if err := writeManifest(dir, second); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, durManifestName+".tmp")); !os.IsNotExist(err) {
		t.Fatal("tmp manifest left behind")
	}
	got, err := loadManifest(filepath.Join(dir, durManifestName))
	if err != nil || got == nil {
		t.Fatal(err)
	}
	if got.seq != 256 {
		t.Fatalf("replace did not take: seq=%d", got.seq)
	}
}
