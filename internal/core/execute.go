package core

import (
	"sort"
	"time"

	"repro/internal/crypto"
	"repro/internal/wire"
)

// defaultNonDetProvider attaches the primary's wall clock and a random
// seed derived from it (deterministic given the clock, which is itself the
// non-deterministic input being agreed).
func (r *Replica) defaultNonDetProvider() wire.NonDet {
	nd := wire.NonDet{Time: uint64(r.now().UnixNano())}
	seed := crypto.DigestOf([]byte("nondet-seed"), nd.Marshal())
	copy(nd.Rand[:], seed[:])
	return nd
}

// defaultNonDetValidator implements the time-delta check of §2.5: accept
// the primary's timestamp only if it is within MaxTimeDrift of the local
// clock. Replayed pre-prepares with old timestamps fail this check — the
// recovery pitfall the paper analyzes.
func (r *Replica) defaultNonDetValidator(nd wire.NonDet) bool {
	if !r.cfg.Opts.ValidateNonDet {
		return true
	}
	drift := r.now().Sub(time.Unix(0, int64(nd.Time)))
	if drift < 0 {
		drift = -drift
	}
	return drift <= r.cfg.Opts.MaxTimeDrift
}

func nonDetValues(raw []byte) NonDetValues {
	nd, err := wire.UnmarshalNonDet(raw)
	if err != nil {
		return NonDetValues{Time: time.Unix(0, 0)}
	}
	return NonDetValues{Time: time.Unix(0, int64(nd.Time)), Rand: nd.Rand}
}

// execReadOnly serves the read-only optimization: execute immediately,
// without agreement; the client assembles a 2f+1 quorum of matching
// replies itself.
func (r *Replica) execReadOnly(req *wire.Request, client *nodeEntry) {
	if r.sync != nil {
		return // state mid-transfer: results would be garbage
	}
	result := r.app.Execute(req.Op, NonDetValues{Time: r.now()}, true)
	rep := &wire.Reply{
		View:      r.view,
		Timestamp: req.Timestamp,
		ClientID:  req.ClientID,
		Replica:   r.id,
		Flags:     wire.FlagTentative,
		Result:    result,
	}
	r.stats.ReadOnlyExec++
	r.sendReply(rep, client)
}

// sendReply transmits a reply to its client.
func (r *Replica) sendReply(rep *wire.Reply, client *nodeEntry) {
	if client == nil {
		return
	}
	env := r.sealToClient(wire.MTReply, rep.Marshal(), client)
	r.sendToAddr(client.Addr, env)
}

// tryExecute runs every executable entry in sequence order. An entry is
// executable when committed, or — with tentative execution — as soon as it
// is prepared (§2.1). Execution wedges on a missing big-request body
// (§2.4) until state transfer overtakes the gap.
func (r *Replica) tryExecute() {
	if r.sync != nil {
		return
	}
	for {
		e := r.log[r.lastExec+1]
		if e == nil || e.pp == nil {
			return
		}
		canExec := e.committed || (e.prepared && r.cfg.Opts.TentativeExecution && !r.inViewChange)
		if !canExec {
			return
		}
		if !r.resolveBodies(e) {
			e.missingBody = true
			return // wedged (§2.4)
		}
		e.missingBody = false
		r.executeEntry(e)
		r.lastExec = e.seq
		if e.committed {
			r.advanceCommittedContig()
		}
		if e.seq%r.cfg.Opts.CheckpointInterval == 0 {
			r.takeCheckpoint(e.seq)
		}
		if r.isPrimary() {
			r.tryPropose() // the congestion window may have room again
		}
	}
}

// resolveBodies checks that every request body of the batch is available.
func (r *Replica) resolveBodies(e *entry) bool {
	for i := range e.pp.Entries {
		be := &e.pp.Entries[i]
		if be.Full {
			continue
		}
		if _, ok := r.bigBodies[be.Digest]; !ok {
			return false
		}
	}
	return true
}

// executeEntry applies one agreed batch to the application.
func (r *Replica) executeEntry(e *entry) {
	nd := nonDetValues(e.pp.NonDet)
	tentative := !e.committed
	e.replies = e.replies[:0]
	for i := range e.pp.Entries {
		be := &e.pp.Entries[i]
		var req *wire.Request
		if be.Full {
			req = &be.Req
		} else {
			req = r.bigBodies[be.Digest].req
			r.bigBodies[be.Digest].executedSeq = e.seq
		}
		rep := r.executeRequest(req, nd, tentative, e.seq)
		if rep != nil {
			e.replies = append(e.replies, rep)
		}
	}
	e.executed = true
	r.stats.Batches++
}

// executeRequest applies one request and sends the reply. It returns the
// reply for tentative-flag upgrading, or nil if the request was a
// duplicate.
func (r *Replica) executeRequest(req *wire.Request, nd NonDetValues, tentative bool, seq uint64) *wire.Reply {
	key := reqKey{req.ClientID, req.Timestamp}
	delete(r.pendingSeen, key)
	if q := r.primaryQueued[req.ClientID]; q != nil {
		delete(q, req.Timestamp)
		if len(q) == 0 {
			delete(r.primaryQueued, req.ClientID)
		}
	}
	if req.System() {
		return r.executeSystem(req, nd, tentative, seq)
	}
	w := r.cfg.ClientWindow()
	cw := r.clientWin(req.ClientID)
	if cw.executed(req.Timestamp, w) {
		return nil // duplicate within a batch or across batches
	}
	result := r.app.Execute(req.Op, nd, false)
	rep := &wire.Reply{
		View:      r.view,
		Timestamp: req.Timestamp,
		ClientID:  req.ClientID,
		Replica:   r.id,
		Result:    result,
	}
	if tentative {
		rep.Flags |= wire.FlagTentative
	}
	cw.record(req.Timestamp, rep, w)
	client := r.nodes.get(req.ClientID)
	if client != nil {
		client.LastActive = uint64(nd.Time.UnixNano())
	}
	r.stats.Executed++
	r.sendReply(rep, client)
	return rep
}

// checkLiveness fires the view-change timer: a pending request that sat
// unexecuted past the timeout, or a view change that stalled, pushes the
// replica to the next view.
func (r *Replica) checkLiveness(now time.Time) {
	if r.inViewChange {
		if !r.vcDeadline.IsZero() && now.After(r.vcDeadline) {
			r.startViewChange(r.vcTarget + 1)
		}
		return
	}
	timeout := r.cfg.Opts.ViewChangeTimeout
	if timeout <= 0 {
		return
	}
	for _, t := range r.pendingSeen {
		if now.Sub(t) > timeout {
			r.startViewChange(r.view + 1)
			return
		}
	}
}

// --- Replicated middleware metadata -------------------------------------
//
// The per-client execution windows (executed timestamps + cached replies),
// dynamic membership and pending joins are part of the replicated state:
// they are folded into checkpoint digests, shipped during state transfer,
// and restored on rollback.

func (r *Replica) marshalMeta() []byte {
	w := wire.NewWriter(1024)

	clients := make([]uint32, 0, len(r.clientWins))
	for c := range r.clientWins {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	w.U32(uint32(len(clients)))
	for _, c := range clients {
		cw := r.clientWins[c]
		w.U32(c)
		w.U64(cw.maxTS)
		tss := cw.sortedTS()
		w.U32(uint32(len(tss)))
		for _, ts := range tss {
			w.U64(ts)
			if rep := cw.done[ts]; rep != nil {
				w.U8(1)
				// Canonical form: volatile fields (view, tentative flag,
				// origin replica) are timing-dependent and must not leak
				// into the agreed state digest.
				canon := wire.Reply{
					Timestamp: rep.Timestamp,
					ClientID:  rep.ClientID,
					Result:    rep.Result,
				}
				w.Bytes32(canon.Marshal())
			} else {
				w.U8(0)
			}
		}
	}

	w.Raw(r.nodes.marshalDynamic())

	keys := make([]string, 0, len(r.pendingJoins))
	for k := range r.pendingJoins {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		pj := r.pendingJoins[k]
		w.String32(k)
		w.String32(pj.addr)
		w.Bytes32(pj.pubRaw)
		w.U64(pj.nonce)
		w.Bytes32(pj.appAuth)
		w.Raw(pj.challenge[:])
		w.U64(pj.ts)
	}
	w.U64(r.idSeed)
	return w.Bytes()
}

func (r *Replica) unmarshalMeta(b []byte) error {
	rd := wire.NewReader(b)
	nClients := int(rd.U32())
	clientWins := make(map[uint32]*clientWindow, nClients)
	for i := 0; i < nClients; i++ {
		c := rd.U32()
		cw := newClientWindow()
		cw.maxTS = rd.U64()
		nTS := int(rd.U32())
		for j := 0; j < nTS; j++ {
			ts := rd.U64()
			var rep *wire.Reply
			if rd.U8() == 1 {
				raw := rd.Bytes32()
				if rd.Err() != nil {
					return rd.Err()
				}
				var err error
				rep, err = wire.UnmarshalReply(raw)
				if err != nil {
					return err
				}
				// Rehydrate the volatile fields for this replica.
				rep.Replica = r.id
				rep.View = r.view
			}
			cw.done[ts] = rep
		}
		clientWins[c] = cw
	}
	if err := rd.Err(); err != nil {
		return err
	}
	// Dynamic membership rows.
	rest := b[rd.Offset():]
	dynLen, err := dynamicRowsLength(rest)
	if err != nil {
		return err
	}
	if err := r.nodes.unmarshalDynamic(rest[:dynLen]); err != nil {
		return err
	}
	rd.Fixed(make([]byte, dynLen))

	nJoins := int(rd.U32())
	pj := make(map[string]*pendingJoin, nJoins)
	for i := 0; i < nJoins; i++ {
		k := rd.String32()
		p := &pendingJoin{}
		p.addr = rd.String32()
		p.pubRaw = rd.Bytes32()
		p.nonce = rd.U64()
		p.appAuth = rd.Bytes32()
		rd.Fixed(p.challenge[:])
		p.ts = rd.U64()
		if rd.Err() != nil {
			return rd.Err()
		}
		pub, err := crypto.UnmarshalPublicKey(p.pubRaw)
		if err != nil {
			return err
		}
		p.pub = pub
		pj[k] = p
	}
	idSeed := rd.U64()
	if err := rd.Done(); err != nil {
		return err
	}
	r.clientWins = clientWins
	r.pendingJoins = pj
	r.idSeed = idSeed
	// The dynamic membership rows changed wholesale (state transfer
	// install or rollback): republish the ingress verifiers' view.
	r.syncClientAuth()
	return nil
}

// dynamicRowsLength computes the encoded length of the dynamic membership
// block without destructively parsing it.
func dynamicRowsLength(b []byte) (int, error) {
	rd := wire.NewReader(b)
	n := int(rd.U32())
	for i := 0; i < n; i++ {
		rd.U32()     // id
		rd.Bytes32() // addr
		rd.Bytes32() // pubkey
		rd.Bytes32() // principal
		rd.U64()     // lastActive
	}
	if err := rd.Err(); err != nil {
		return 0, err
	}
	return rd.Offset(), nil
}

// rollbackTentative rewinds tentative executions to the committed prefix:
// restore the last stable checkpoint, then re-execute the committed
// entries above it. Called when entering a view change (§2.1, tentative
// execution).
func (r *Replica) rollbackTentative() {
	if r.lastExec == r.committedContig {
		return
	}
	ck := r.ckpts[r.lastStable]
	if ck == nil || ck.snap == nil {
		return // cannot roll back without the anchor; state transfer will fix us
	}
	r.region.Restore(ck.snap)
	if err := r.unmarshalMeta(ck.meta); err != nil {
		return
	}
	r.region.ReleaseAbove(r.lastStable)
	for s := range r.ckpts {
		if s > r.lastStable {
			delete(r.ckpts, s)
		}
	}
	r.lastExec = r.lastStable
	for s := r.lastStable + 1; ; s++ {
		e := r.log[s]
		if e == nil || !e.committed || e.pp == nil || !r.resolveBodies(e) {
			break
		}
		r.executeEntry(e)
		r.lastExec = s
		if e.seq%r.cfg.Opts.CheckpointInterval == 0 {
			r.takeCheckpoint(e.seq)
		}
	}
	r.committedContig = r.lastExec
}

// ndMarshal flattens a non-determinism payload (helper for call sites that
// hold a value, not a pointer).
func ndMarshal(nd wire.NonDet) []byte { return nd.Marshal() }
