package core

import (
	"sort"
	"time"

	"repro/internal/crypto"
	"repro/internal/exec"
	"repro/internal/trace"
	"repro/internal/wire"
)

// defaultNonDetProvider attaches the primary's wall clock and a random
// seed derived from it (deterministic given the clock, which is itself the
// non-deterministic input being agreed).
func (r *Replica) defaultNonDetProvider() wire.NonDet {
	nd := wire.NonDet{Time: uint64(r.now().UnixNano())}
	seed := crypto.DigestOf([]byte("nondet-seed"), nd.Marshal())
	copy(nd.Rand[:], seed[:])
	return nd
}

// defaultNonDetValidator implements the time-delta check of §2.5: accept
// the primary's timestamp only if it is within MaxTimeDrift of the local
// clock. Replayed pre-prepares with old timestamps fail this check — the
// recovery pitfall the paper analyzes.
func (r *Replica) defaultNonDetValidator(nd wire.NonDet) bool {
	if !r.cfg.Opts.ValidateNonDet {
		return true
	}
	drift := r.now().Sub(time.Unix(0, int64(nd.Time)))
	if drift < 0 {
		drift = -drift
	}
	return drift <= r.cfg.Opts.MaxTimeDrift
}

func nonDetValues(raw []byte) NonDetValues {
	nd, err := wire.UnmarshalNonDet(raw)
	if err != nil {
		return NonDetValues{Time: time.Unix(0, 0)}
	}
	return NonDetValues{Time: time.Unix(0, int64(nd.Time)), Rand: nd.Rand}
}

// execReadOnly serves the read-only optimization (§2.1): execute without
// agreement; the client assembles a 2f+1 quorum of matching replies
// itself. Execution is dispatched to the sharded engine so application
// work — possibly a slow read — never runs on the protocol loop: a keyed
// read runs on its shard, ordered behind any scheduled conflicting write;
// an unkeyed read is an engine barrier. The reply is sealed and sent by
// the shard worker from state snapshotted here, on the loop.
func (r *Replica) execReadOnly(req *wire.Request, client *nodeEntry) {
	if r.sync != nil {
		return // state mid-transfer: results would be garbage
	}
	r.stats.ReadOnlyExec++
	rep := &wire.Reply{
		View:      r.view,
		Timestamp: req.Timestamp,
		ClientID:  req.ClientID,
		Replica:   r.id,
		Flags:     wire.FlagTentative,
	}
	op := req.Op
	nd := NonDetValues{Time: r.now()}
	useMAC := r.cfg.Opts.UseMACs && client.HasSession
	session := client.Session
	addr := client.Addr
	r.exec.SubmitDetached(r.shardKeys(op), func() {
		rep.Result = r.app.Execute(op, nd, true)
		r.sendSealedReply(addr, rep, session, useMAC)
	})
}

// sendSealedReply is the one reply egress path: encode into a pooled
// writer, seal with the given session material, ship, return both
// buffers to the arena. Safe off the protocol loop (it touches only its
// arguments, immutable replica material and the thread-safe connection).
func (r *Replica) sendSealedReply(addr string, rep *wire.Reply, session crypto.SessionKey, useMAC bool) {
	pw := wire.GetWriter(48 + len(rep.Result))
	rep.Encode(pw)
	env := r.sealWithSession(wire.MTReply, pw.Bytes(), session, useMAC)
	r.sendToAddr(addr, env)
	env.ReleaseRaw()
	pw.Free()
}

// sendReply transmits a reply to its client (the cached-retransmission
// path; freshly executed replies ship via sealAndSendReply).
func (r *Replica) sendReply(rep *wire.Reply, client *nodeEntry) {
	if client == nil {
		return
	}
	r.sendSealedReply(client.Addr, rep, client.Session, r.cfg.Opts.UseMACs && client.HasSession)
}

// tryExecute schedules every executable entry in sequence order on the
// execution engine, then reaps the results. An entry is executable when
// committed, or — with tentative execution — as soon as it is prepared
// (§2.1). Execution wedges on a missing big-request body (§2.4) until
// state transfer overtakes the gap.
//
// All executable entries are submitted before anything blocks on them, so
// non-conflicting operations across consecutive batches churn on every
// shard at once. With Options.AsyncReap the pass ends by handing the
// span to the reaper goroutine and returning to the protocol loop —
// agreement on the next sequence numbers overlaps the application work —
// while checkpoint boundaries (and the other barriers) still drain
// everything first, so the snapshot observes exactly the operations up to
// the boundary: the property that keeps checkpoint digests identical
// across replicas, shard counts and reap modes.
func (r *Replica) tryExecute() {
	if r.sync != nil || r.executing {
		return
	}
	r.executing = true
	defer func() { r.executing = false }()
	for {
		e := r.log[r.lastExec+1]
		if e == nil || e.pp == nil {
			break
		}
		canExec := e.committed || (e.prepared && r.cfg.Opts.TentativeExecution && !r.inViewChange)
		if !canExec {
			break
		}
		if !r.resolveBodies(e) {
			e.missingBody = true
			break // wedged (§2.4)
		}
		e.missingBody = false
		r.submitEntry(e)
		r.lastExec = e.seq
		if e.committed {
			r.advanceCommittedContig()
		}
		if e.seq%r.cfg.Opts.CheckpointInterval == 0 {
			// Reaping waits for every scheduled mutation, so the
			// snapshot observes exactly the operations up to the
			// boundary. Detached reads may still run — they only read
			// the (internally synchronized) region.
			r.reapApplies()
			r.takeCheckpoint(e.seq)
		}
		if r.isPrimary() {
			r.tryPropose() // the congestion window may have room again
		}
	}
	r.finishSpan()
}

// resolveBodies checks that every request body of the batch is available.
func (r *Replica) resolveBodies(e *entry) bool {
	for i := range e.pp.Entries {
		be := &e.pp.Entries[i]
		if be.Full {
			continue
		}
		if _, ok := r.bigBodies[be.Digest]; !ok {
			return false
		}
	}
	return true
}

// pendingApply is one request handed to the execution engine and not yet
// reaped. The shard worker writes result; readers observe it only through
// a happens-before edge — the task's done channel (async reaper) or
// exec.WaitIdle's ordered-completion counter chain (synchronous reap).
//
// Everything the reply needs outside the loop is snapshotted here at
// submission time (client address and session material, the view), so the
// reaper goroutine can seal and send without touching loop-owned state.
type pendingApply struct {
	req       *wire.Request
	e         *entry
	tentative bool
	ndTime    time.Time
	result    []byte
	task      *exec.Task
	// rep is built in place (one object per request; the reply cache
	// retains &rep, and pa with it, for the client window's lifetime).
	rep wire.Reply
	// Client snapshot for off-loop reply sealing; hasClient is false when
	// the client was unknown at submission (no reply is sent, but the
	// apply still integrates into the reply cache).
	hasClient bool
	addr      string
	session   crypto.SessionKey
	useMAC    bool
}

// shardKeys asks the application for an operation's conflict keyset. The
// upcall is skipped in the serial configuration, where every operation
// runs in commit order regardless.
func (r *Replica) shardKeys(op []byte) [][]byte {
	if r.sharder == nil || r.exec.Serial() {
		return nil
	}
	return r.sharder.Keys(op)
}

// submitEntry schedules one agreed batch. The loop-side bookkeeping
// (deduplication, pending-request tracking, membership operations) runs
// here in commit order; the application work goes to the engine.
func (r *Replica) submitEntry(e *entry) {
	nd := nonDetValues(e.pp.NonDet)
	tentative := !e.committed
	e.replies = e.replies[:0]
	for i := range e.pp.Entries {
		be := &e.pp.Entries[i]
		var req *wire.Request
		if be.Full {
			req = &be.Req
		} else {
			req = r.bigBodies[be.Digest].req
			r.bigBodies[be.Digest].executedSeq = e.seq
		}
		r.submitRequest(req, nd, tentative, e)
	}
	e.executed = true
	r.stats.Batches++
	if r.tracer != nil {
		r.tracer.OnBatch(BatchEvent{
			Replica: r.id, View: e.view, Seq: e.seq,
			Requests: len(e.pp.Entries), Tentative: tentative,
		})
	}
}

// submitRequest performs one request's loop-side work and hands the
// application execution to the engine (or, for duplicates, nothing).
func (r *Replica) submitRequest(req *wire.Request, nd NonDetValues, tentative bool, e *entry) {
	key := reqKey{req.ClientID, req.Timestamp}
	delete(r.pendingSeen, key)
	if q := r.primaryQueued[req.ClientID]; q != nil {
		delete(q, req.Timestamp)
		if len(q) == 0 {
			delete(r.primaryQueued, req.ClientID)
		}
	}
	if req.System() {
		// Join/Leave mutate protocol-loop state (node table, sessions,
		// pending joins): execute on the loop itself, as a barrier —
		// everything scheduled before must have applied (reaping waits
		// for it).
		r.reapApplies()
		if rep := r.executeSystem(req, nd, tentative, e.seq); rep != nil {
			e.replies = append(e.replies, rep)
		}
		return
	}
	w := r.cfg.ClientWindow()
	cw := r.clientWin(req.ClientID)
	if cw.executed(req.Timestamp, w) {
		return // duplicate within a batch or across batches
	}
	// Mark executed now — later batches must see this timestamp as done —
	// and attach the cached reply when the result is reaped.
	cw.record(req.Timestamp, nil, w)
	pa := &pendingApply{req: req, e: e, tentative: tentative, ndTime: nd.Time}
	pa.rep = wire.Reply{
		View:      r.view,
		Timestamp: req.Timestamp,
		ClientID:  req.ClientID,
		Replica:   r.id,
	}
	if tentative {
		pa.rep.Flags |= wire.FlagTentative
	}
	if client := r.nodes.get(req.ClientID); client != nil {
		pa.hasClient = true
		pa.addr = client.Addr
		pa.session = client.Session
		pa.useMAC = r.cfg.Opts.UseMACs && client.HasSession
	}
	op := req.Op
	rec := r.rec
	if rec != nil {
		rec.StampSeq(req.ClientID, req.Timestamp, trace.ExecSchedule, e.seq, e.view)
	}
	pa.task = r.exec.Submit(r.shardKeys(op), func() {
		pa.result = r.app.Execute(op, nd, false)
		if rec != nil {
			// Stamped by the shard worker; the recorder is thread-safe.
			rec.Stamp(pa.rep.ClientID, pa.rep.Timestamp, trace.ExecDone)
		}
	})
	r.applyQueue = append(r.applyQueue, pa)
}

// sealAndSendReply finishes one apply's reply — fill in the result, seal,
// ship — in submission order relative to its span. Safe off the protocol
// loop: it touches only the submission-time snapshot in pa, immutable
// replica material (id, key pair) and the thread-safe connection. The
// sealed form and payload scratch go back to the arena immediately (the
// cached reply for retransmission is the *wire.Reply, not its wire form).
func (r *Replica) sealAndSendReply(pa *pendingApply) {
	pa.rep.Result = pa.result
	if !pa.hasClient {
		return
	}
	if r.rec != nil {
		// pa.req may already be nil by integrateSpan; the reply carries
		// the request identity, so key the timeline off it.
		r.rec.Stamp(pa.rep.ClientID, pa.rep.Timestamp, trace.ReplySealed)
	}
	r.sendSealedReply(pa.addr, &pa.rep, pa.session, pa.useMAC)
	if r.rec != nil {
		r.rec.Finish(pa.rep.ClientID, pa.rep.Timestamp, trace.ReplySent)
	}
}

// integrateSpan performs the loop-side half of reaping a completed span:
// attach the cached replies to the client windows (they are replicated
// state), record liveness, count executions. Replies were already sent by
// sealAndSendReply; a commit certificate that arrived while the span was
// in flight upgrades the cached copy here (the client's copy is upgraded
// by the usual retransmission path).
func (r *Replica) integrateSpan(span []*pendingApply) {
	for _, pa := range span {
		rep := &pa.rep
		if pa.tentative && pa.e.committed {
			rep.Flags &^= wire.FlagTentative
		}
		r.clientWin(pa.req.ClientID).attach(pa.req.Timestamp, rep)
		pa.e.replies = append(pa.e.replies, rep)
		if client := r.nodes.get(pa.req.ClientID); client != nil {
			client.LastActive = uint64(pa.ndTime.UnixNano())
			if client.HasSession {
				r.nodes.touchSession(client)
			}
		}
		r.stats.Executed++
		// The reply cache retains rep — and therefore pa — for as long as
		// the client window does. Drop pa's references to the request
		// body, the engine task and the log entry so an idle client's
		// cached reply does not pin a whole batch past checkpoint GC.
		pa.req = nil
		pa.task = nil
		pa.e = nil
	}
}

// finishSpan closes one tryExecute pass over the current applyQueue.
// Synchronous mode reaps it in place. Async mode prefers the inline fast
// path — when nothing is queued behind the reaper and every task already
// finished (the serial engine's inline execution), reaping here costs no
// handoff and keeps the seed schedule — and otherwise hands the span to
// the reaper goroutine so agreement overlaps the remaining execution.
func (r *Replica) finishSpan() {
	if r.reaper != nil {
		r.collectReaped()
	}
	if len(r.applyQueue) == 0 {
		return
	}
	if r.reaper == nil || (r.reaper.idle() && r.spanDone()) {
		r.reapSpanInPlace()
		return
	}
	span := r.applyQueue
	r.applyQueue = nil
	r.reaper.submit(span)
}

// spanDone reports whether every task in the current applyQueue has
// already executed (non-blocking).
func (r *Replica) spanDone() bool {
	for _, pa := range r.applyQueue {
		select {
		case <-pa.task.Done():
		default:
			return false
		}
	}
	return true
}

// reapSpanInPlace is the synchronous reap: wait for the engine, then send
// and integrate the span on the loop — the pre-async behaviour, still
// used with AsyncReap off and by the inline fast path.
func (r *Replica) reapSpanInPlace() {
	// Every task in applyQueue was submitted before this point, so one
	// WaitIdle covers them all — results are written and visible.
	r.exec.WaitIdle()
	for _, pa := range r.applyQueue {
		r.sealAndSendReply(pa)
	}
	r.integrateSpan(r.applyQueue)
	clear(r.applyQueue) // release the reaped span's requests and tasks
	r.applyQueue = r.applyQueue[:0]
}

// collectReaped integrates any spans the reaper has finished with,
// without blocking. The protocol loop calls it opportunistically (reaper
// notify) and before starting a new span.
func (r *Replica) collectReaped() {
	for _, span := range r.reaper.collect() {
		r.integrateSpan(span)
	}
}

// reapApplies is the full barrier: every scheduled mutation executed,
// every reply sent, every span integrated. Checkpoints, membership
// operations, view-change rollback, state transfer and shutdown all pass
// through here — which is why a snapshot can never observe a half-reaped
// span, in either reap mode.
func (r *Replica) reapApplies() {
	r.finishSpan()
	if r.reaper != nil {
		r.reaper.drain(r.integrateSpan)
	}
	r.exec.WaitIdle()
}

// checkLiveness fires the view-change timer: a pending request that sat
// unexecuted past the timeout, or a view change that stalled, pushes the
// replica to the next view.
func (r *Replica) checkLiveness(now time.Time) {
	if r.inViewChange {
		if !r.vcDeadline.IsZero() && now.After(r.vcDeadline) {
			r.startViewChange(r.vcTarget + 1)
		}
		return
	}
	timeout := r.cfg.Opts.ViewChangeTimeout
	if timeout <= 0 {
		return
	}
	for _, t := range r.pendingSeen {
		if now.Sub(t) > timeout {
			r.startViewChange(r.view + 1)
			return
		}
	}
}

// --- Replicated middleware metadata -------------------------------------
//
// The per-client execution windows (executed timestamps + cached replies),
// dynamic membership and pending joins are part of the replicated state:
// they are folded into checkpoint digests, shipped during state transfer,
// and restored on rollback.

func (r *Replica) marshalMeta() []byte {
	w := wire.NewWriter(1024)

	clients := make([]uint32, 0, len(r.clientWins))
	for c := range r.clientWins {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	w.U32(uint32(len(clients)))
	for _, c := range clients {
		cw := r.clientWins[c]
		w.U32(c)
		w.U64(cw.maxTS)
		w.U64(cw.base)
		tss := cw.sortedTS()
		w.U32(uint32(len(tss)))
		for _, ts := range tss {
			w.U64(ts)
			if rep := cw.done[ts]; rep != nil {
				w.U8(1)
				// Canonical form: volatile fields (view, tentative flag,
				// origin replica) are timing-dependent and must not leak
				// into the agreed state digest.
				canon := wire.Reply{
					Timestamp: rep.Timestamp,
					ClientID:  rep.ClientID,
					Result:    rep.Result,
				}
				w.Bytes32(canon.Marshal())
			} else {
				w.U8(0)
			}
		}
	}

	w.Raw(r.nodes.marshalDynamic())

	keys := make([]string, 0, len(r.pendingJoins))
	for k := range r.pendingJoins {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		pj := r.pendingJoins[k]
		w.String32(k)
		w.String32(pj.addr)
		w.Bytes32(pj.pubRaw)
		w.U64(pj.nonce)
		w.Bytes32(pj.appAuth)
		w.Raw(pj.challenge[:])
		w.U64(pj.ts)
	}
	w.U64(r.idSeed)
	return w.Bytes()
}

func (r *Replica) unmarshalMeta(b []byte) error {
	rd := wire.NewReader(b)
	nClients := int(rd.U32())
	clientWins := make(map[uint32]*clientWindow, nClients)
	for i := 0; i < nClients; i++ {
		c := rd.U32()
		cw := newClientWindow()
		cw.maxTS = rd.U64()
		cw.base = rd.U64()
		nTS := int(rd.U32())
		for j := 0; j < nTS; j++ {
			ts := rd.U64()
			var rep *wire.Reply
			if rd.U8() == 1 {
				raw := rd.Bytes32()
				if rd.Err() != nil {
					return rd.Err()
				}
				var err error
				rep, err = wire.UnmarshalReply(raw)
				if err != nil {
					return err
				}
				// Rehydrate the volatile fields for this replica.
				rep.Replica = r.id
				rep.View = r.view
			}
			cw.done[ts] = rep
		}
		clientWins[c] = cw
	}
	if err := rd.Err(); err != nil {
		return err
	}
	// Dynamic membership rows.
	rest := b[rd.Offset():]
	dynLen, err := dynamicRowsLength(rest)
	if err != nil {
		return err
	}
	if err := r.nodes.unmarshalDynamic(rest[:dynLen]); err != nil {
		return err
	}
	rd.Fixed(make([]byte, dynLen))

	nJoins := int(rd.U32())
	pj := make(map[string]*pendingJoin, nJoins)
	for i := 0; i < nJoins; i++ {
		k := rd.String32()
		p := &pendingJoin{}
		p.addr = rd.String32()
		p.pubRaw = rd.Bytes32()
		p.nonce = rd.U64()
		p.appAuth = rd.Bytes32()
		rd.Fixed(p.challenge[:])
		p.ts = rd.U64()
		if rd.Err() != nil {
			return rd.Err()
		}
		pub, err := crypto.UnmarshalPublicKey(p.pubRaw)
		if err != nil {
			return err
		}
		p.pub = pub
		pj[k] = p
	}
	idSeed := rd.U64()
	if err := rd.Done(); err != nil {
		return err
	}
	r.clientWins = clientWins
	r.pendingJoins = pj
	r.idSeed = idSeed
	// The dynamic membership rows changed wholesale (state transfer
	// install or rollback): republish the ingress verifiers' view.
	r.syncClientAuth()
	return nil
}

// dynamicRowsLength computes the encoded length of the dynamic membership
// block without destructively parsing it.
func dynamicRowsLength(b []byte) (int, error) {
	rd := wire.NewReader(b)
	n := int(rd.U32())
	for i := 0; i < n; i++ {
		rd.U32()     // id
		rd.Bytes32() // addr
		rd.Bytes32() // pubkey
		rd.Bytes32() // principal
		rd.U64()     // lastActive
	}
	if err := rd.Err(); err != nil {
		return 0, err
	}
	return rd.Offset(), nil
}

// rollbackTentative rewinds tentative executions to the committed prefix:
// restore the last stable checkpoint, then re-execute the committed
// entries above it. Called when entering a view change (§2.1, tentative
// execution).
func (r *Replica) rollbackTentative() {
	if r.lastExec == r.committedContig {
		return
	}
	ck := r.ckpts[r.lastStable]
	if ck == nil || ck.snap == nil {
		return // cannot roll back without the anchor; state transfer will fix us
	}
	// Integrate every in-flight span before the client windows are
	// restored underneath it, then quiesce detached reads before
	// rewinding the region under them.
	r.reapApplies()
	r.exec.Drain()
	r.region.Restore(ck.snap)
	if err := r.unmarshalMeta(ck.meta); err != nil {
		return
	}
	r.region.ReleaseAbove(r.lastStable)
	for s := range r.ckpts {
		if s > r.lastStable {
			delete(r.ckpts, s)
		}
	}
	r.lastExec = r.lastStable
	for s := r.lastStable + 1; ; s++ {
		e := r.log[s]
		if e == nil || !e.committed || e.pp == nil || !r.resolveBodies(e) {
			break
		}
		r.submitEntry(e)
		r.lastExec = s
		if e.seq%r.cfg.Opts.CheckpointInterval == 0 {
			r.reapApplies()
			r.takeCheckpoint(e.seq)
		}
	}
	r.reapApplies()
	r.committedContig = r.lastExec
}

// ndMarshal flattens a non-determinism payload (helper for call sites that
// hold a value, not a pointer).
func ndMarshal(nd wire.NonDet) []byte { return nd.Marshal() }
