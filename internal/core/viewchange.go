package core

import (
	"bytes"
	"sort"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// startViewChange abandons the current view and votes for target (§2.1).
func (r *Replica) startViewChange(target uint64) {
	if target <= r.view {
		return
	}
	if r.inViewChange && target <= r.vcTarget {
		return
	}
	r.stats.ViewChanges++
	r.inViewChange = true
	r.vcTarget = target
	r.vcDeadline = r.now().Add(r.cfg.Opts.ViewChangeTimeout)
	if r.tracer != nil {
		r.tracer.OnViewChange(ViewChangeEvent{
			Replica: r.id, Phase: ViewChangeStart, View: r.view, Target: target,
		})
	}
	r.recEvent(trace.EvViewChangeStart, target, r.seq)
	r.pendingQueue = nil
	r.rollbackTentative()

	vc := &wire.ViewChange{
		NewView:    target,
		LastStable: r.lastStable,
		Replica:    r.id,
	}
	if ck := r.ckpts[r.lastStable]; ck != nil {
		vc.StableDigest = ck.digest
	}
	seqs := make([]uint64, 0, len(r.log))
	for s := range r.log {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, s := range seqs {
		e := r.log[s]
		if e.prepared && s > r.lastStable {
			vc.Prepared = append(vc.Prepared, wire.PreparedInfo{
				Seq:    s,
				View:   e.view,
				Digest: e.digest,
				PPRaw:  e.ppRaw,
			})
		}
	}
	env := r.sealSigned(wire.MTViewChange, vc.Marshal())
	raw := env.Raw()
	r.recordViewChange(vc, raw)
	r.broadcast(env)
	r.tryNewView(target)
}

// recordViewChange stores one view-change vote.
func (r *Replica) recordViewChange(vc *wire.ViewChange, raw []byte) {
	votes, ok := r.viewChanges[vc.NewView]
	if !ok {
		votes = make(map[uint32]*vcRecord)
		r.viewChanges[vc.NewView] = votes
	}
	if _, dup := votes[vc.Replica]; !dup {
		votes[vc.Replica] = &vcRecord{vc: vc, raw: raw}
	}
}

// onViewChange processes a peer's (signed) view-change vote.
func (r *Replica) onViewChange(env *wire.Envelope, raw []byte) {
	vc, err := wire.UnmarshalViewChange(env.Payload)
	if err != nil || vc.Replica != env.Sender {
		return
	}
	if vc.NewView <= r.view {
		return
	}
	r.recordViewChange(vc, raw)

	// Liveness rule: seeing f+1 distinct replicas voting for views above
	// ours, join the smallest of them (prevents a slow replica from
	// stalling behind).
	if !r.inViewChange || vc.NewView > r.vcTarget {
		smallest := uint64(0)
		voters := make(map[uint32]bool)
		for v, votes := range r.viewChanges {
			if v <= r.view {
				continue
			}
			for id := range votes {
				if id != r.id {
					voters[id] = true
				}
			}
			if smallest == 0 || v < smallest {
				smallest = v
			}
		}
		if len(voters) > r.f && smallest > r.view {
			if !r.inViewChange || smallest > r.vcTarget {
				r.startViewChange(smallest)
			}
		}
	}
	r.tryNewView(vc.NewView)
}

// tryNewView lets the would-be primary of the target view assemble and
// broadcast the new-view message once it holds a 2f+1 quorum of votes.
func (r *Replica) tryNewView(target uint64) {
	if r.cfg.Primary(target) != r.id || target <= r.view {
		return
	}
	if !r.inViewChange || r.vcTarget != target {
		return
	}
	votes := r.viewChanges[target]
	if len(votes) < r.quorum {
		return
	}
	ids := make([]uint32, 0, len(votes))
	for id := range votes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ids = ids[:r.quorum]
	selected := make([]*vcRecord, 0, len(ids))
	raws := make([][]byte, 0, len(ids))
	for _, id := range ids {
		selected = append(selected, votes[id])
		raws = append(raws, votes[id].raw)
	}
	o := computeO(target, selected)
	nv := &wire.NewView{View: target, ViewChanges: raws, PrePrepares: o}
	env := r.sealSigned(wire.MTNewView, nv.Marshal())
	raw := env.Raw()
	r.broadcast(env)
	r.installNewView(nv, raw)
}

// computeO derives the re-proposed pre-prepares of a new view from the
// selected view-change votes: for every sequence number between the
// highest stable checkpoint (min-s) and the highest prepared sequence
// number (max-s), re-propose the prepared batch with the highest view, or
// a null request if none prepared (§2.1, Castro–Liskov).
func computeO(view uint64, votes []*vcRecord) []wire.PrePrepare {
	minS := uint64(0)
	maxS := uint64(0)
	type cand struct {
		view  uint64
		ppRaw []byte
	}
	best := make(map[uint64]cand)
	for _, rec := range votes {
		if rec.vc.LastStable > minS {
			minS = rec.vc.LastStable
		}
		for _, p := range rec.vc.Prepared {
			if p.Seq > maxS {
				maxS = p.Seq
			}
			if c, ok := best[p.Seq]; !ok || p.View > c.view {
				best[p.Seq] = cand{view: p.View, ppRaw: p.PPRaw}
			}
		}
	}
	var out []wire.PrePrepare
	for s := minS + 1; s <= maxS; s++ {
		c, ok := best[s]
		if !ok {
			// Null request fills the gap.
			out = append(out, wire.PrePrepare{View: view, Seq: s})
			continue
		}
		env, err := wire.UnmarshalEnvelope(c.ppRaw)
		if err != nil {
			out = append(out, wire.PrePrepare{View: view, Seq: s})
			continue
		}
		pp, err := wire.UnmarshalPrePrepare(env.Payload)
		if err != nil {
			out = append(out, wire.PrePrepare{View: view, Seq: s})
			continue
		}
		out = append(out, wire.PrePrepare{
			View:    view,
			Seq:     s,
			NonDet:  pp.NonDet,
			Entries: pp.Entries,
		})
	}
	return out
}

// onNewView validates and installs a primary's new-view message.
func (r *Replica) onNewView(env *wire.Envelope, raw []byte) {
	nv, err := wire.UnmarshalNewView(env.Payload)
	if err != nil {
		return
	}
	if nv.View <= r.view || env.Sender != r.cfg.Primary(nv.View) {
		return
	}
	// Verify the supporting votes: 2f+1 correctly signed view changes
	// for exactly this view, from distinct replicas.
	seen := make(map[uint32]bool)
	votes := make([]*vcRecord, 0, len(nv.ViewChanges))
	for _, vcRaw := range nv.ViewChanges {
		vcEnv, err := wire.UnmarshalEnvelope(vcRaw)
		if err != nil || vcEnv.Type != wire.MTViewChange {
			return
		}
		if !r.verifySignedReplica(vcEnv) {
			return
		}
		vc, err := wire.UnmarshalViewChange(vcEnv.Payload)
		if err != nil || vc.Replica != vcEnv.Sender || vc.NewView != nv.View {
			return
		}
		if seen[vc.Replica] {
			return
		}
		seen[vc.Replica] = true
		votes = append(votes, &vcRecord{vc: vc, raw: vcRaw})
	}
	if len(votes) < r.quorum {
		return
	}
	// Recompute O independently and compare: a faulty primary cannot
	// smuggle in batches that were never prepared.
	expected := computeO(nv.View, votes)
	if len(expected) != len(nv.PrePrepares) {
		return
	}
	for i := range expected {
		if !bytes.Equal(expected[i].Marshal(), nv.PrePrepares[i].Marshal()) {
			return
		}
	}
	r.installNewView(nv, raw)
}

// installNewView moves the replica into the new view and re-runs
// agreement for the re-proposed sequence numbers.
func (r *Replica) installNewView(nv *wire.NewView, raw []byte) {
	if !r.inViewChange {
		// Jumping into the view directly (e.g. replica was partitioned
		// during the vote): roll back tentative state first.
		r.rollbackTentative()
	}
	r.view = nv.View
	r.inViewChange = false
	r.vcTarget = 0
	r.vcDeadline = time.Time{} // disarmed until the next view change
	r.newViewRaw = raw
	if r.tracer != nil {
		// Fires before the re-proposed batches replay, so a trace reads
		// install -> (re)agreement -> execution in order.
		r.tracer.OnViewChange(ViewChangeEvent{
			Replica: r.id, Phase: ViewChangeInstall, View: nv.View, Target: nv.View,
		})
	}
	r.recEvent(trace.EvViewChangeInstall, nv.View, r.seq)
	r.primaryQueued = make(map[uint32]map[uint64]bool)
	r.primaryJoinSeen = nil
	r.pendingQueue = nil
	// Restart the request liveness timers: the new primary deserves a
	// full timeout to order what the clients retransmit.
	now := r.now()
	for k := range r.pendingSeen {
		r.pendingSeen[k] = now
	}

	maxS := r.lastStable
	primaryEnv := &wire.Envelope{Type: wire.MTPrePrepare, Sender: r.cfg.Primary(nv.View)}
	for i := range nv.PrePrepares {
		pp := nv.PrePrepares[i]
		if pp.Seq > maxS {
			maxS = pp.Seq
		}
		if pp.Seq <= r.lastStable {
			continue
		}
		primaryEnv.Payload = pp.Marshal()
		e := r.getEntry(pp.Seq)
		e.resetForView(pp.View, &pp, primaryEnv.Marshal(), pp.BatchDigest())
		if !r.isPrimary() && !e.sentPrepare {
			e.sentPrepare = true
			prep := wire.Prepare{View: pp.View, Seq: pp.Seq, Digest: e.digest, Replica: r.id}
			e.prepares[r.id] = e.digest
			r.broadcast(r.sealToReplicas(wire.MTPrepare, prep.Marshal()))
		}
	}
	if r.seq < maxS {
		r.seq = maxS
	}
	// Entries above max-s from the old view are void (they were not
	// prepared anywhere in the quorum's knowledge).
	for s, e := range r.log {
		if s > maxS && e.view < nv.View {
			delete(r.log, s)
		}
	}
	for i := range nv.PrePrepares {
		if nv.PrePrepares[i].Seq <= r.lastStable {
			continue
		}
		if e := r.log[nv.PrePrepares[i].Seq]; e != nil {
			r.tryPrepared(e)
		}
	}
	r.tryExecute()
}
