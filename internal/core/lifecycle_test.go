package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestShutdownBeforeRun: a replica that is built and discarded without
// ever running must shut down cleanly (releasing the execution engine
// and the connection) and stay permanently stopped.
func TestShutdownBeforeRun(t *testing.T) {
	cfg, rkeys, _ := testConfig(t, 1, 0)
	r := newTestReplica(t, cfg, 0, rkeys[0])
	if err := r.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown before Run: %v", err)
	}
	if err := r.Run(context.Background()); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run after Shutdown = %v, want ErrStopped", err)
	}
	if r.Running() {
		t.Fatal("replica reports Running after Shutdown")
	}
	// Info still answers from the quiescent state.
	if info := r.Info(); info.View != 0 {
		t.Fatalf("quiescent Info.View = %d", info.View)
	}
}

// TestDoubleShutdown: Shutdown is idempotent — concurrent and repeated
// calls all return cleanly.
func TestDoubleShutdown(t *testing.T) {
	cfg, rkeys, _ := testConfig(t, 1, 0)
	r := newTestReplica(t, cfg, 0, rkeys[0])
	runDone := make(chan error, 1)
	go func() { runDone <- r.Run(context.Background()) }()
	// Wait for the loop to be live; otherwise a fast Shutdown legally
	// wins the race and Run reports ErrStopped (Shutdown-before-Run).
	r.Inspect(func(Info) {})

	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { errs <- r.Shutdown(context.Background()) }()
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("Shutdown %d: %v", i, err)
		}
	}
	if err := <-runDone; err != nil {
		t.Fatalf("Run returned %v after Shutdown, want nil", err)
	}
	if err := r.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown after stop: %v", err)
	}
}

// TestRunLifecycleErrors: double Run returns ErrRunning; Run after the
// loop finished returns ErrStopped.
func TestRunLifecycleErrors(t *testing.T) {
	cfg, rkeys, _ := testConfig(t, 1, 0)
	r := newTestReplica(t, cfg, 0, rkeys[0])
	first := make(chan error, 1)
	go func() { first <- r.Run(context.Background()) }()
	// Wait until the loop is live (Inspect round-trips through it).
	r.Inspect(func(Info) {})
	if !r.Running() {
		t.Fatal("replica must report Running while the loop is live")
	}
	if err := r.Run(context.Background()); !errors.Is(err, ErrRunning) {
		t.Fatalf("second Run = %v, want ErrRunning", err)
	}
	if err := r.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-first; err != nil {
		t.Fatalf("first Run = %v, want nil", err)
	}
	if err := r.Run(context.Background()); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run after stop = %v, want ErrStopped", err)
	}
}

// TestRunContextCancel: cancelling Run's context stops the replica and
// Run returns the context error.
func TestRunContextCancel(t *testing.T) {
	cfg, rkeys, _ := testConfig(t, 1, 0)
	r := newTestReplica(t, cfg, 0, rkeys[0])
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()
	r.Inspect(func(Info) {})
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after context cancellation")
	}
	if r.Running() {
		t.Fatal("replica still Running after context cancellation")
	}
	// Shutdown after a context-driven stop stays clean.
	if err := r.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDeprecatedStartStopWrappers: the legacy API still works and is
// idempotent in the states it could historically be used in.
func TestDeprecatedStartStopWrappers(t *testing.T) {
	cfg, rkeys, _ := testConfig(t, 1, 0)
	r := newTestReplica(t, cfg, 0, rkeys[0])
	r.Start()
	r.Inspect(func(Info) {})
	r.Stop()
	r.Stop() // double Stop was always allowed
	if err := r.Run(context.Background()); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run after Stop = %v, want ErrStopped", err)
	}
}
