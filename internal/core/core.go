// Package core implements the PBFT replica: the three-phase agreement
// protocol of Castro–Liskov with its performance optimizations (MAC
// authenticators, big-request handling, tentative execution, read-only
// requests, batching with a congestion window), checkpointing with Merkle
// state snapshots, view changes, state transfer, and the paper's dynamic
// client membership extension (§3.1).
//
// # Staged packet pipeline
//
// A replica processes packets in three stages, so the cryptographic hot
// path (§2.1 of the paper: MAC authenticators are what make agreement
// affordable) scales across cores while the protocol itself stays
// sequential:
//
//  1. Ingress (ingress.go): a pool of Options.VerifyWorkers goroutines
//     pulls raw datagrams from the transport, unmarshals envelopes, and
//     performs all stateless work — authenticator/signature checks,
//     request digest computation, session-key derivation — in parallel.
//     A reorder buffer then hands the surviving messages to the protocol
//     loop in transport arrival order, preserving per-sender FIFO.
//  2. Protocol loop (replica.go run): a single goroutine owns every piece
//     of protocol state (log, node table, checkpoints, view-change and
//     sync records) and performs only stateful validation and protocol
//     transitions. Nothing outside this goroutine may touch that state;
//     external access goes through Inspect.
//  3. Egress (auth.go seals + Replica.broadcast): messages to the group
//     are sealed and marshaled exactly once and the same byte slice is
//     fanned out through transport.Broadcast.
//
// Ownership rules between the stages: ingress workers read only immutable
// key material plus the clientAuthTable, a read-only view of client keys
// that the protocol loop republishes (syncClientAuth) after every
// membership or session mutation; a message instance is owned by one
// goroutine at a time (worker, then loop); sealed envelopes and their
// memoized wire forms are immutable once broadcast.
//
// # Lifecycle and observability
//
// A replica runs a one-shot, context-driven lifecycle — Run(ctx) blocks
// while serving, Shutdown(ctx) drains gracefully (ingress backlog,
// execution engine, pending replies) before closing, and both are
// idempotent and safe in every state (ErrStopped / ErrRunning). Typed
// protocol events (view changes, checkpoints, state transfer, batches,
// commits, client sessions) flow to an optional Options.Tracer fired
// from the protocol loop; a nil tracer costs one nil check per event
// site. See tracer.go for the event taxonomy and blocking rules.
package core
