package core
