package core

import (
	"repro/internal/crypto"
	"repro/internal/trace"
	"repro/internal/wire"
)

// recordLocalCheckpoint snapshots the region and metadata as checkpoint
// seq, without broadcasting (used for genesis).
func (r *Replica) recordLocalCheckpoint(seq uint64) *ckptRecord {
	// Deterministic dedup-window compaction happens exactly here, before
	// the metadata is serialized: every replica reaches this point with
	// the same windows at the same seq, so the compacted set — and the
	// digest over it — agree.
	r.compactClientWins()
	snap := r.region.Snapshot(seq)
	meta := r.marshalMeta()
	metaDigest := crypto.DigestOf(meta)
	root := snap.Root()
	ck := &ckptRecord{
		seq:        seq,
		digest:     wire.CompositeStateDigest(root, metaDigest),
		root:       root,
		metaDigest: metaDigest,
		meta:       meta,
		snap:       snap,
		votes:      make(map[uint32][]byte),
		mine:       true,
	}
	if prev, ok := r.ckpts[seq]; ok {
		// Votes may have arrived before our own execution got here.
		for id, raw := range prev.votes {
			ck.votes[id] = raw
		}
	}
	r.ckpts[seq] = ck
	return ck
}

// takeCheckpoint produces and broadcasts the checkpoint at seq (§2.1).
func (r *Replica) takeCheckpoint(seq uint64) {
	ck := r.recordLocalCheckpoint(seq)
	r.stats.Checkpoints++
	if r.tracer != nil {
		r.tracer.OnCheckpoint(CheckpointEvent{Replica: r.id, Seq: seq, Digest: ck.digest})
	}
	r.recEvent(trace.EvCheckpoint, r.view, seq)
	msg := wire.Checkpoint{
		Seq:         seq,
		StateDigest: ck.digest,
		Root:        ck.root,
		MetaDigest:  ck.metaDigest,
		Replica:     r.id,
	}
	env := r.sealSigned(wire.MTCheckpoint, msg.Marshal())
	ck.votes[r.id] = env.Raw()
	r.broadcast(env)
	r.tryStable(ck)
}

// onCheckpoint records a peer's checkpoint vote (decoded, consistency-
// checked and signature-verified by the ingress pipeline).
func (r *Replica) onCheckpoint(m *wire.Checkpoint, raw []byte) {
	if m.Seq <= r.lastStable {
		return // old news
	}
	ck, ok := r.ckpts[m.Seq]
	if !ok {
		ck = &ckptRecord{
			seq:        m.Seq,
			digest:     m.StateDigest,
			root:       m.Root,
			metaDigest: m.MetaDigest,
			votes:      make(map[uint32][]byte),
		}
		r.ckpts[m.Seq] = ck
	}
	if ck.digest == m.StateDigest {
		ck.votes[m.Replica] = raw
	} else {
		// A conflicting digest: if 2f+1 replicas agree on the other
		// value, this replica's state has diverged; count separately.
		r.countForeignVote(m, raw)
		return
	}
	r.tryStable(ck)
}

// foreignVotes tracks checkpoint votes whose digest disagrees with the
// local record, keyed by (seq, digest).
type foreignKey struct {
	seq    uint64
	digest crypto.Digest
}

func (r *Replica) countForeignVote(m *wire.Checkpoint, raw []byte) {
	if r.foreign == nil {
		r.foreign = make(map[foreignKey]map[uint32][]byte)
	}
	k := foreignKey{m.Seq, m.StateDigest}
	votes, ok := r.foreign[k]
	if !ok {
		votes = make(map[uint32][]byte)
		r.foreign[k] = votes
	}
	votes[m.Replica] = raw
	if len(votes) >= r.quorum {
		// The group agreed on a state this replica does not have:
		// it must state-transfer to the proven checkpoint.
		proof := make([][]byte, 0, len(votes))
		for _, v := range votes {
			proof = append(proof, v)
		}
		r.startSync(m.Seq, m.StateDigest, m.Root, m.MetaDigest, proof)
	}
}

// tryStable promotes a checkpoint with a 2f+1 proof to stable.
func (r *Replica) tryStable(ck *ckptRecord) {
	if ck.stable || len(ck.votes) < r.quorum || ck.seq <= r.lastStable {
		return
	}
	ck.stable = true
	if !ck.mine {
		// Proof exists but this replica has not produced the matching
		// checkpoint. Remember it; maybeRecoverFromLag decides whether
		// to wait for the log to catch us up or to transfer state
		// (§2.4 recovery path).
		if r.remoteStable == nil || ck.seq > r.remoteStable.seq {
			r.remoteStable = ck
		}
		r.maybeRecoverFromLag()
		return
	}
	r.makeStable(ck)
}

// maybeRecoverFromLag starts a state transfer to the newest proven remote
// checkpoint when the replica cannot make progress by replaying the log:
// it is wedged on a missing big-request body (§2.4), or it trails by at
// least a full checkpoint interval (e.g. after a restart, §2.3).
func (r *Replica) maybeRecoverFromLag() {
	ck := r.remoteStable
	if ck == nil {
		return
	}
	if r.sync != nil {
		// A transfer is running. If the group's stable checkpoint moved
		// past our target, the peers may have garbage-collected the old
		// snapshot — retarget to the newer one.
		if ck.seq > r.sync.seq {
			r.retargetSync(ck)
		}
		return
	}
	if ck.seq <= r.lastExec {
		r.remoteStable = nil
		return
	}
	behind := ck.seq - r.lastExec
	if !r.wedged() && behind < r.cfg.Opts.CheckpointInterval {
		return // the log (plus status retransmission) will catch us up
	}
	r.retargetSync(ck)
}

// retargetSync starts (or redirects) a state transfer at the given proven
// checkpoint.
func (r *Replica) retargetSync(ck *ckptRecord) {
	proof := make([][]byte, 0, len(ck.votes))
	for _, v := range ck.votes {
		proof = append(proof, v)
	}
	r.remoteStable = nil
	r.startSync(ck.seq, ck.digest, ck.root, ck.metaDigest, proof)
}

// makeStable installs a stable checkpoint: advance the low watermark and
// garbage-collect the log (§2.1).
func (r *Replica) makeStable(ck *ckptRecord) {
	if ck.seq <= r.lastStable {
		return
	}
	r.lastStable = ck.seq
	r.stats.StableCkpts++
	if r.tracer != nil {
		r.tracer.OnCheckpoint(CheckpointEvent{Replica: r.id, Seq: ck.seq, Digest: ck.digest, Stable: true})
	}
	r.recEvent(trace.EvCheckpointStable, r.view, ck.seq)
	proof := make([][]byte, 0, len(ck.votes))
	for _, v := range ck.votes {
		proof = append(proof, v)
	}
	r.stableProof = proof
	if r.committedContig < ck.seq {
		r.committedContig = ck.seq
	}
	r.persistStable(ck)
	r.gcLog()
	if r.isPrimary() {
		if r.seq < r.lastStable {
			r.seq = r.lastStable
		}
		r.tryPropose()
	}
}

// gcLog drops everything at or below the stable checkpoint.
func (r *Replica) gcLog() {
	for s := range r.log {
		if s <= r.lastStable {
			delete(r.log, s)
		}
	}
	for s := range r.ckpts {
		if s < r.lastStable {
			delete(r.ckpts, s)
		}
	}
	for d, b := range r.bigBodies {
		if b.executedSeq != 0 && b.executedSeq <= r.lastStable {
			delete(r.bigBodies, d)
		}
	}
	for k := range r.foreign {
		if k.seq <= r.lastStable {
			delete(r.foreign, k)
		}
	}
	r.region.ReleaseBelow(r.lastStable)
}
