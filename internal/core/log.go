package core

import (
	"time"

	"repro/internal/crypto"
	"repro/internal/wire"
)

// entry is the message-log record for one sequence number: the
// pre-prepare, the prepare and commit certificates, and the execution
// status.
type entry struct {
	seq    uint64
	view   uint64 // view of the accepted pre-prepare
	pp     *wire.PrePrepare
	ppRaw  []byte // the pre-prepare's original envelope (retransmission, P sets)
	digest crypto.Digest

	// prepares maps backup id -> agreed digest (primary's pre-prepare
	// stands in for its prepare, so it is excluded).
	prepares map[uint32]crypto.Digest
	// commits maps replica id -> agreed digest.
	commits map[uint32]crypto.Digest

	prepared    bool
	committed   bool
	executed    bool // tentatively or stably
	sentPrepare bool
	sentCommit  bool
	// missingBody marks a big-request wedge (§2.4): the entry is agreed
	// but a request body never arrived, so execution cannot proceed.
	missingBody bool
	// proposedAt stamps when this replica (as primary, with the adaptive
	// batching controller running) proposed the batch; the commit
	// certificate closes the controller's latency sample. Zero otherwise.
	proposedAt time.Time
	// replies are the replies produced at execution; shared with the
	// reply cache so a later commit can clear their tentative flag.
	replies []*wire.Reply
}

func newEntry(seq uint64) *entry {
	return &entry{
		seq:      seq,
		prepares: make(map[uint32]crypto.Digest),
		commits:  make(map[uint32]crypto.Digest),
	}
}

// countPrepares returns the number of backups that prepared the entry's
// digest.
func (e *entry) countPrepares() int {
	n := 0
	for _, d := range e.prepares {
		if d == e.digest {
			n++
		}
	}
	return n
}

// countCommits returns the number of replicas that committed the entry's
// digest.
func (e *entry) countCommits() int {
	n := 0
	for _, d := range e.commits {
		if d == e.digest {
			n++
		}
	}
	return n
}

// resetForView clears the agreement state when a new view re-proposes the
// sequence number (certificates are per-view).
func (e *entry) resetForView(view uint64, pp *wire.PrePrepare, ppRaw []byte, digest crypto.Digest) {
	e.view = view
	e.pp = pp
	e.ppRaw = ppRaw
	e.digest = digest
	e.prepares = make(map[uint32]crypto.Digest)
	e.commits = make(map[uint32]crypto.Digest)
	e.prepared = false
	e.committed = false
	e.sentPrepare = false
	e.sentCommit = false
	e.missingBody = false
}

// reqKey identifies one client request.
type reqKey struct {
	client uint32
	ts     uint64
}

// bigBody is a request body received directly from a client (big-request
// optimization), waiting to be referenced by a digest-only batch entry.
type bigBody struct {
	req *wire.Request
	// executedSeq is the sequence number the request executed at
	// (0 = not yet executed); bodies are garbage collected once their
	// sequence number falls below the stable checkpoint.
	executedSeq uint64
}
