package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/crypto"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// This file implements the ingress stage of the replica's staged packet
// pipeline: a pool of verifier workers that pulls raw datagrams off the
// transport, unmarshals envelopes, performs every piece of *stateless*
// authentication (MAC authenticator entries, signatures, digest
// precomputation, session-key derivation) in parallel, and hands
// pre-verified, typed messages to the protocol loop in arrival order.
//
// Ownership rules:
//   - Workers touch only immutable replica material (id, group size,
//     pairwise replica keys, replica public keys, the long-term key pair)
//     plus the clientAuthTable, a concurrently readable view of client
//     key material that the protocol loop republishes after mutations.
//   - A message instance (envelope, decoded payload, memoized digests) is
//     owned by exactly one goroutine at a time: the worker until it marks
//     the message done, the protocol loop afterwards.
//   - Delivery order equals transport arrival order (a reorder buffer
//     re-sequences the workers' out-of-order completions), so per-sender
//     FIFO into the protocol loop is preserved exactly as it was when the
//     loop read the socket directly.

// ingressDepth bounds the number of packets in flight inside the pipeline
// (being verified or awaiting in-order delivery). When it fills, the
// dispatcher stops reading the socket and the transport sheds load the
// same way it always has: receive-buffer overflow.
const ingressDepth = 512

// verdict is a worker's decision about one packet.
type verdict uint8

const (
	// vDeliver hands the verified, decoded message to the protocol loop.
	vDeliver verdict = iota
	// vDropBadAuth drops the packet and counts it in DroppedBadAuth.
	vDropBadAuth
	// vDropMalformed drops a packet that failed structural decoding
	// before (or instead of) authentication — garbage framing, truncated
	// envelopes, undecodable request bodies. Counted in DroppedMalformed
	// so chaos assertions can tell forged MACs from noise.
	vDropMalformed
	// vIgnore drops the packet silently (stale, malformed-but-
	// authenticated, or not replica-bound) — mirroring the silent
	// returns of the pre-pipeline handlers. Counted in DroppedIgnored.
	vIgnore
)

// inMsg is one datagram moving through the pipeline. The worker fills the
// typed payload field matching the envelope type; cold-path messages
// (view changes, state transfer) are decoded by the protocol loop, which
// keeps their raw forms anyway.
//
// Instances recycle through inMsgPool: the envelope and the fixed-size
// message types decode into inline storage, so the steady-state per-packet
// allocation count on the ingress side is zero for replica traffic. The
// protocol loop returns every delivered message with putInMsg after
// handling — nothing a handler retains (heap-decoded requests and
// pre-prepares, raw buffers) points back into the inMsg.
type inMsg struct {
	raw []byte
	// pkt is the transport packet raw came from; releaseRaw hands its
	// (possibly pooled) buffer back once the message is finished with.
	pkt transport.Packet
	// env is decoded in place (no per-packet Envelope allocation); its
	// Payload and Sig alias raw.
	env wire.Envelope

	// req and pp stay heap-allocated: the protocol loop retains them
	// (pending queues, big-request bodies, the agreement log) beyond the
	// message's lifetime.
	req *wire.Request
	pp  *wire.PrePrepare

	// The fixed-size types decode into the inline *Store fields; the
	// pointers are nil or point at those stores.
	prep   *wire.Prepare
	cmt    *wire.Commit
	ckpt   *wire.Checkpoint
	status *wire.Status

	prepStore   wire.Prepare
	cmtStore    wire.Commit
	ckptStore   wire.Checkpoint
	statusStore wire.Status
	helloStore  wire.SessionHello

	// Session establishment: the worker verifies the hello and derives
	// the shared key (the ECDH is the expensive part); the loop installs
	// it after re-checking the entry against verifiedPub.
	hello      *wire.SessionHello
	sessionKey crypto.SessionKey

	// verifiedPub is the identity a client packet (request or hello)
	// was verified against. The loop compares it with the node table's
	// current entry before acting: if the id was vacated and reassigned
	// while the packet sat in the pipeline, the worker's verification
	// no longer vouches for the present entry.
	verifiedPub crypto.PublicKey

	// authPending marks client packets whose verification failed at the
	// worker: the published auth view may lag a session install or join
	// that is ahead of this packet in arrival order but not yet applied
	// by the loop. authGen is the view generation the worker verified
	// against; the loop re-verifies only if the view changed while the
	// packet was in flight (restoring the pre-pipeline semantics of
	// verification at processing time) and otherwise lets the worker's
	// verdict stand — so hostile floods cost the loop a counter
	// comparison, not a re-verification, per packet.
	authPending bool
	authGen     uint64

	// arriveNs is the flight-recorder arrival mark, captured when the
	// packet left the transport (recorder nanos; 0 with no recorder).
	// The request's identity is only known after decode, so the mark
	// rides along until processRequest stamps it.
	arriveNs int64

	verdict verdict
	done    chan struct{}
}

// releaseRaw returns the message's receive buffer to the transport's
// pool. Only call sites that know the raw bytes are not retained — drops,
// and the protocol loop after handling message types whose decoded forms
// are full copies (requests, prepares, commits, status, hellos, state
// transfer) — may call it; everything else leaves the buffer to the
// garbage collector. The inline envelope still aliases the returned
// buffer until reset; nothing reads it after release.
func (m *inMsg) releaseRaw() {
	m.raw = nil
	m.pkt.Release()
}

// inMsgPool recycles message slots across packets. A slot's inline
// envelope keeps its Auth.Tags backing array and its done channel across
// uses, so the steady-state pipeline overhead per packet is zero
// allocations on the ingress side.
var inMsgPool = sync.Pool{New: func() any { return new(inMsg) }}

// getInMsg takes a recycled message slot and binds it to one packet.
func getInMsg(pkt transport.Packet) *inMsg {
	m := inMsgPool.Get().(*inMsg)
	m.raw = pkt.Data
	m.pkt = pkt
	return m
}

// putInMsg resets a message slot and returns it to the pool. The caller
// must be the slot's sole owner and must not touch it afterwards; anything
// a handler retained (heap-decoded requests / pre-prepares, raw buffers)
// is unaffected — only the slot itself is reused.
func putInMsg(m *inMsg) {
	m.raw = nil
	m.pkt = transport.Packet{}
	m.env.Reset()
	m.req = nil
	m.pp = nil
	m.prep = nil
	m.cmt = nil
	m.ckpt = nil
	m.status = nil
	m.hello = nil
	// The fixed-size stores hold no pointers except the hello's Addr and
	// PubKey; drop those so a parked slot doesn't pin them.
	m.helloStore = wire.SessionHello{}
	m.sessionKey = crypto.SessionKey{}
	m.verifiedPub = crypto.PublicKey{}
	m.authPending = false
	m.authGen = 0
	m.arriveNs = 0
	m.verdict = vDeliver
	// m.done is kept: the forwarder consumed its completion token, so the
	// channel is empty and ready for the slot's next trip through the
	// worker pool.
	inMsgPool.Put(m)
}

// release drops a message entirely: receive buffer back to the transport,
// slot back to the pool.
func (in *ingress) release(m *inMsg) {
	m.releaseRaw()
	putInMsg(m)
}

// clientAuth is an immutable value snapshot of one client's key material.
type clientAuth struct {
	pub        crypto.PublicKey
	session    crypto.SessionKey
	hasSession bool
}

// clientAuthTable is the ingress stage's concurrently readable view of
// the node table's client rows. The protocol loop owns the node table and
// republishes this view after every membership or session mutation;
// workers read value copies only, so no nodeEntry field is ever shared
// across goroutines.
type clientAuthTable struct {
	mu sync.RWMutex
	m  map[uint32]clientAuth
	// gen increments on every mutation. A worker records the generation
	// it verified against; an unchanged generation at processing time
	// means re-verification would return the same answer.
	gen uint64
}

func newClientAuthTable() *clientAuthTable {
	return &clientAuthTable{m: make(map[uint32]clientAuth)}
}

// lookup returns the entry for id plus the generation it was read at.
func (t *clientAuthTable) lookup(id uint32) (clientAuth, bool, uint64) {
	t.mu.RLock()
	ca, ok := t.m[id]
	g := t.gen
	t.mu.RUnlock()
	return ca, ok, g
}

func (t *clientAuthTable) generation() uint64 {
	t.mu.RLock()
	g := t.gen
	t.mu.RUnlock()
	return g
}

// set updates one client row (the per-hello fast path).
func (t *clientAuthTable) set(id uint32, ca clientAuth) {
	t.mu.Lock()
	t.m[id] = ca
	t.gen++
	t.mu.Unlock()
}

// remove drops one client row (leave, eviction).
func (t *clientAuthTable) remove(id uint32) {
	t.mu.Lock()
	delete(t.m, id)
	t.gen++
	t.mu.Unlock()
}

// reconcile updates the view in place to match the node table's client
// rows: refresh or insert every current client, delete vanished ids, one
// generation bump. Unlike a wholesale map swap it reuses the existing
// map's storage, so periodic bulk republishes (state transfer install,
// rollback) don't reallocate a table sized to the client population.
func (t *clientAuthTable) reconcile(nodes map[uint32]*nodeEntry, firstClient int) {
	t.mu.Lock()
	for id := range t.m {
		if _, ok := nodes[id]; !ok || int(id) < firstClient {
			delete(t.m, id)
		}
	}
	for id, e := range nodes {
		if int(id) < firstClient {
			continue // replicas authenticate via the static pairwise keys
		}
		t.m[id] = clientAuthOf(e)
	}
	t.gen++
	t.mu.Unlock()
}

// syncClientAuth republishes the node table's client rows to the ingress
// verifiers wholesale. The protocol loop calls it at construction and
// after bulk replacement (state transfer install, rollback); single-row
// changes use publishClientAuth / unpublishClientAuth instead.
func (r *Replica) syncClientAuth() {
	r.ingress.clients.reconcile(r.nodes.byID, r.n)
}

// publishClientAuth republishes one client row (hello, join admission:
// O(1) instead of rebuilding the whole view).
func (r *Replica) publishClientAuth(e *nodeEntry) {
	r.ingress.clients.set(e.ID, clientAuthOf(e))
}

// unpublishClientAuth withdraws one client row (leave, eviction).
func (r *Replica) unpublishClientAuth(id uint32) {
	r.ingress.clients.remove(id)
}

func clientAuthOf(e *nodeEntry) clientAuth {
	return clientAuth{pub: e.Pub, session: e.Session, hasSession: e.HasSession}
}

// ingress is the verification stage between transport and protocol loop.
type ingress struct {
	id          uint32
	n           int
	kp          *crypto.KeyPair
	replicaKeys []crypto.SessionKey
	replicaPubs []crypto.PublicKey
	clients     *clientAuthTable
	workers     int

	work  chan *inMsg   // dispatcher -> workers
	seq   chan *inMsg   // dispatcher -> forwarder, in arrival order
	out   chan *inMsg   // forwarder -> protocol loop
	pause chan struct{} // closed by beginSettle: stop intake, finish in-flight
	quit  chan struct{}
	wg    sync.WaitGroup

	droppedBadAuth   atomic.Uint64
	droppedMalformed atomic.Uint64
	droppedIgnored   atomic.Uint64

	// rec is the replica's flight recorder (nil = disabled): the ingress
	// stamps request arrival/verify marks and records drop events.
	rec *trace.Recorder
}

func newIngress(id uint32, n int, kp *crypto.KeyPair, replicaKeys []crypto.SessionKey, replicaPubs []crypto.PublicKey, workers int) *ingress {
	if workers < 1 {
		workers = 1
	}
	return &ingress{
		id:          id,
		n:           n,
		kp:          kp,
		replicaKeys: replicaKeys,
		replicaPubs: replicaPubs,
		clients:     newClientAuthTable(),
		workers:     workers,
	}
}

// start launches the pipeline goroutines over the transport's inbound
// channel. The pipeline winds down when recv closes; stop unblocks it if
// the consumer of out is gone. A single-worker pool (the resolved default
// on one core) needs no reorder buffer: one goroutine verifies inline in
// arrival order, skipping the per-packet completion bookkeeping.
func (in *ingress) start(recv <-chan transport.Packet) {
	in.out = make(chan *inMsg, ingressDepth)
	in.pause = make(chan struct{})
	in.quit = make(chan struct{})
	if in.workers == 1 {
		in.wg.Add(1)
		go in.runSerial(recv)
		return
	}
	in.work = make(chan *inMsg, in.workers*2)
	in.seq = make(chan *inMsg, ingressDepth)
	in.wg.Add(1)
	go in.dispatch(recv)
	for i := 0; i < in.workers; i++ {
		in.wg.Add(1)
		go in.worker()
	}
	in.wg.Add(1)
	go in.forward()
}

// runSerial is the single-worker fast path: verify and deliver inline.
func (in *ingress) runSerial(recv <-chan transport.Packet) {
	defer in.wg.Done()
	defer close(in.out)
	for {
		var pkt transport.Packet
		var ok bool
		select {
		case pkt, ok = <-recv:
			if !ok {
				return
			}
		case <-in.pause:
			return
		}
		m := getInMsg(pkt)
		if in.rec != nil {
			m.arriveNs = in.rec.Now()
		}
		in.process(m)
		switch m.verdict {
		case vDeliver:
			select {
			case in.out <- m:
			case <-in.quit:
				return
			}
		default:
			in.drop(m)
		}
	}
}

// drop counts a non-delivery verdict, records the matching flight-
// recorder event (adversarial storms show up as drop-event slopes in a
// /debug/flight dump) and releases the message.
func (in *ingress) drop(m *inMsg) {
	switch m.verdict {
	case vDropBadAuth:
		in.droppedBadAuth.Add(1)
		if in.rec != nil {
			in.rec.RecordEvent(trace.EvDropBadAuth, 0, 0)
		}
	case vDropMalformed:
		in.droppedMalformed.Add(1)
		if in.rec != nil {
			in.rec.RecordEvent(trace.EvDropMalformed, 0, 0)
		}
	case vIgnore:
		in.droppedIgnored.Add(1)
		if in.rec != nil {
			in.rec.RecordEvent(trace.EvDropIgnored, 0, 0)
		}
	}
	in.release(m)
}

// beginSettle stops the intake (as if the transport had closed) without
// touching the packets already admitted: workers finish verifying them,
// the forwarder delivers them, and out is closed behind the last one.
// The caller must keep consuming out until it closes — the pipeline may
// be blocked mid-delivery on a full channel. Graceful shutdown uses this
// to turn "whatever is inside the pipeline" into a finite, fully
// delivered backlog. Safe to call once, before stop.
func (in *ingress) beginSettle() {
	close(in.pause)
}

// stop terminates the pipeline and waits for its goroutines. Safe to call
// only once, after start.
func (in *ingress) stop() {
	close(in.quit)
	in.wg.Wait()
}

// backlog estimates how many packets are inside the pipeline: verified
// and awaiting the protocol loop, or (with a worker pool) dispatched and
// awaiting verification. It is a monitoring gauge — channel occupancy is
// inherently racy — and is cheap enough for the protocol loop to read on
// every Info snapshot.
func (in *ingress) backlog() int {
	n := len(in.out)
	if in.seq != nil {
		n += len(in.seq)
	}
	return n
}

// dispatch assigns every received packet a slot in the reorder queue and
// fans the verification work out to the pool. A packet enters work before
// seq so the forwarder never waits on a message no worker will process.
func (in *ingress) dispatch(recv <-chan transport.Packet) {
	defer in.wg.Done()
	defer close(in.seq)
	defer close(in.work)
	for {
		var pkt transport.Packet
		var ok bool
		select {
		case pkt, ok = <-recv:
			if !ok {
				return
			}
		case <-in.pause:
			return
		}
		m := getInMsg(pkt)
		if in.rec != nil {
			m.arriveNs = in.rec.Now()
		}
		if m.done == nil {
			// Buffered so the worker's completion send never blocks; the
			// channel survives recycling (drained by the forwarder each
			// trip), so only a slot's first pool-path use allocates it.
			m.done = make(chan struct{}, 1)
		}
		select {
		case in.work <- m:
		case <-in.quit:
			return
		}
		select {
		case in.seq <- m:
		case <-in.quit:
			return
		}
	}
}

// worker verifies and decodes packets until the work channel closes. It
// drains the channel unconditionally (no quit select): the forwarder
// relies on every dispatched message eventually completing.
func (in *ingress) worker() {
	defer in.wg.Done()
	for m := range in.work {
		in.process(m)
		m.done <- struct{}{}
	}
}

// forward delivers completed messages to the protocol loop in arrival
// order, counting authentication drops on the way.
func (in *ingress) forward() {
	defer in.wg.Done()
	defer close(in.out)
	for m := range in.seq {
		<-m.done
		switch m.verdict {
		case vDeliver:
			select {
			case in.out <- m:
			case <-in.quit:
				// Consumer gone: keep draining seq so worker results
				// are consumed, but deliver nothing further.
			}
		default:
			in.drop(m)
		}
	}
}

// process runs the full stateless path for one packet: envelope decode,
// authentication, typed payload decode, digest warm-up.
func (in *ingress) process(m *inMsg) {
	if err := wire.UnmarshalEnvelopeInto(&m.env, m.raw); err != nil {
		m.verdict = vDropMalformed
		return
	}
	env := &m.env
	switch env.Type {
	case wire.MTRequest:
		in.processRequest(m, env)
	case wire.MTPrePrepare:
		if !in.verifyFromReplica(env) {
			m.verdict = vDropBadAuth
			return
		}
		pp, err := wire.UnmarshalPrePrepare(env.Payload)
		if err != nil {
			m.verdict = vIgnore
			return
		}
		pp.BatchDigest() // warm the memo off the protocol loop
		m.pp = pp
	case wire.MTPrepare:
		if !in.verifyFromReplica(env) {
			m.verdict = vDropBadAuth
			return
		}
		if err := wire.UnmarshalPrepareInto(&m.prepStore, env.Payload); err != nil || m.prepStore.Replica != env.Sender {
			m.verdict = vIgnore
			return
		}
		m.prep = &m.prepStore
	case wire.MTCommit:
		if !in.verifyFromReplica(env) {
			m.verdict = vDropBadAuth
			return
		}
		if err := wire.UnmarshalCommitInto(&m.cmtStore, env.Payload); err != nil || m.cmtStore.Replica != env.Sender {
			m.verdict = vIgnore
			return
		}
		m.cmt = &m.cmtStore
	case wire.MTCheckpoint:
		if !in.verifySignedReplica(env) {
			m.verdict = vDropBadAuth
			return
		}
		if err := wire.UnmarshalCheckpointInto(&m.ckptStore, env.Payload); err != nil || m.ckptStore.Replica != env.Sender || !m.ckptStore.Consistent() {
			m.verdict = vIgnore
			return
		}
		m.ckpt = &m.ckptStore
	case wire.MTViewChange, wire.MTNewView:
		// Signature checked here; payloads are decoded by the protocol
		// loop (cold path — it retains and re-verifies raw vote
		// envelopes as proofs anyway).
		if !in.verifySignedReplica(env) {
			m.verdict = vDropBadAuth
			return
		}
	case wire.MTSessionHello:
		in.processHello(m, env)
	case wire.MTStatus:
		if !in.verifyFromReplica(env) {
			m.verdict = vIgnore
			return
		}
		if err := wire.UnmarshalStatusInto(&m.statusStore, env.Payload); err != nil || m.statusStore.Replica != env.Sender {
			m.verdict = vIgnore
			return
		}
		m.status = &m.statusStore
	case wire.MTFetch, wire.MTStateNode, wire.MTStatePage:
		// Unauthenticated recovery traffic, verified against agreed
		// digests inside the protocol loop.
	default:
		// Replies and join challenges are client-bound; a replica
		// ignores them.
		m.verdict = vIgnore
	}
}

// processRequest authenticates a client request. Join requests pass
// through undecided: their signature is checked against the key embedded
// in the body by the protocol loop, which consults pending-join state.
func (in *ingress) processRequest(m *inMsg, env *wire.Envelope) {
	req, err := wire.UnmarshalRequest(env.Payload)
	if err != nil {
		m.verdict = vDropMalformed
		return
	}
	m.req = req
	if req.System() && env.Sender == JoinSender {
		return
	}
	if int(env.Sender) < in.n || req.ClientID != env.Sender {
		m.verdict = vDropBadAuth
		return
	}
	ca, ok, gen := in.clients.lookup(env.Sender)
	if !ok || !verifyClientEnvelope(env, in.id, ca) {
		// Unknown client (a join not yet republished — or never
		// admitted) or failed MAC/signature (a racing session install
		// — or a forgery). Record the view generation and let the loop
		// decide: re-verify if the view moved, stand by the failure
		// otherwise.
		m.authPending = true
		m.authGen = gen
		return
	}
	m.verifiedPub = ca.pub
	if req.Big() {
		req.Digest() // warm the memo off the protocol loop
	}
	if in.rec != nil {
		// The request's identity is now verified: backfill the arrival
		// mark captured at the transport and stamp verification done.
		in.rec.StampAt(req.ClientID, req.Timestamp, trace.IngressArrive, m.arriveNs)
		in.rec.Stamp(req.ClientID, req.Timestamp, trace.VerifyDone)
	}
}

// verifyClientEnvelope is the single implementation of client envelope
// authentication: an authenticator entry under the session key, or a
// signature under the long-term key. Ingress workers and the protocol
// loop's re-verification both call it, with their respective views of
// the key material.
func verifyClientEnvelope(env *wire.Envelope, replicaID uint32, ca clientAuth) bool {
	switch env.Kind {
	case wire.AuthMAC:
		// No session key material (e.g. this replica restarted and the
		// client's hello has not been retransmitted yet — the §2.3
		// stall): the envelope cannot be authenticated.
		return ca.hasSession && env.VerifyMACEntry(int(replicaID), ca.session)
	case wire.AuthSig:
		return env.VerifySig(ca.pub)
	default:
		return false
	}
}

// processHello verifies a session hello and derives the shared key, so
// the protocol loop only installs the result.
func (in *ingress) processHello(m *inMsg, env *wire.Envelope) {
	if err := wire.UnmarshalSessionHelloInto(&m.helloStore, env.Payload); err != nil {
		m.verdict = vIgnore
		return
	}
	h := &m.helloStore
	if h.ClientID != env.Sender || int(h.ClientID) < in.n {
		m.verdict = vIgnore
		return
	}
	m.hello = h
	ca, ok, gen := in.clients.lookup(h.ClientID)
	if !ok {
		// The client may have been admitted by a join the loop has not
		// republished yet; let the loop verify and derive.
		m.authPending = true
		m.authGen = gen
		return
	}
	if env.Kind != wire.AuthSig || !env.VerifySig(ca.pub) {
		// Same stale-view possibility as requests (the id may have been
		// reassigned by ops the loop has not applied): gen-guarded
		// deferral, not a final drop.
		m.authPending = true
		m.authGen = gen
		return
	}
	ephemeral, err := crypto.UnmarshalPublicKey(h.PubKey)
	if err != nil {
		m.verdict = vIgnore
		return
	}
	sk, err := in.kp.SharedKey(ephemeral)
	if err != nil {
		m.verdict = vIgnore
		return
	}
	m.verifiedPub = ca.pub
	m.sessionKey = sk
}

// verifyFromReplica authenticates an envelope claimed to come from a
// fellow replica (MAC authenticator entry or signature).
func (in *ingress) verifyFromReplica(env *wire.Envelope) bool {
	if int(env.Sender) >= in.n || env.Sender == in.id {
		return false
	}
	switch env.Kind {
	case wire.AuthMAC:
		return env.VerifyMACEntry(int(in.id), in.replicaKeys[env.Sender])
	case wire.AuthSig:
		return env.VerifySig(in.replicaPubs[env.Sender])
	default:
		return false
	}
}

// verifySignedReplica authenticates an always-signed replica envelope
// (view change, new view, checkpoint). It is usable on stored raw
// envelopes.
func (in *ingress) verifySignedReplica(env *wire.Envelope) bool {
	if int(env.Sender) >= in.n {
		return false
	}
	if env.Kind != wire.AuthSig {
		return false
	}
	return env.VerifySig(in.replicaPubs[env.Sender])
}
