package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/crypto"
	"repro/internal/transport"
	"repro/internal/wire"
)

// verifyFromClient authenticates a client envelope against the published
// auth view, the way processRequest does (lookup + verifyClientEnvelope).
// Test-only: production paths inline the lookup because they also need
// the generation and verified identity.
func (in *ingress) verifyFromClient(env *wire.Envelope) bool {
	if int(env.Sender) < in.n {
		return false
	}
	ca, ok, _ := in.clients.lookup(env.Sender)
	return ok && verifyClientEnvelope(env, in.id, ca)
}

// ingressFixture builds a standalone ingress stage for replica 0 of an
// n=4 group, plus the key material to seal traffic as any peer.
type ingressFixture struct {
	kps         []*crypto.KeyPair
	replicaPubs []crypto.PublicKey
	recvKeys    []crypto.SessionKey // replica 0's pairwise keys
	in          *ingress
}

func newIngressFixture(t testing.TB, workers int) *ingressFixture {
	t.Helper()
	const n = 4
	f := &ingressFixture{
		kps:         make([]*crypto.KeyPair, n),
		replicaPubs: make([]crypto.PublicKey, n),
		recvKeys:    make([]crypto.SessionKey, n),
	}
	for i := range f.kps {
		kp, err := crypto.GenerateKeyPair(nil)
		if err != nil {
			t.Fatal(err)
		}
		f.kps[i] = kp
		f.replicaPubs[i] = kp.Public()
	}
	for i := 1; i < n; i++ {
		k, err := f.kps[0].SharedKey(f.kps[i].Public())
		if err != nil {
			t.Fatal(err)
		}
		f.recvKeys[i] = k
	}
	f.in = newIngress(0, n, f.kps[0], f.recvKeys, f.replicaPubs, workers)
	return f
}

// sealMAC seals an envelope from peer `from` with a full authenticator,
// exactly like sealToReplicas.
func (f *ingressFixture) sealMAC(t testing.TB, from uint32, mt wire.MsgType, payload []byte) []byte {
	t.Helper()
	env := &wire.Envelope{Type: mt, Sender: from, Payload: payload}
	keys := make([]crypto.SessionKey, len(f.kps))
	for i := range f.kps {
		if uint32(i) == from {
			continue
		}
		k, err := f.kps[from].SharedKey(f.kps[i].Public())
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	env.Kind = wire.AuthMAC
	env.Auth = crypto.ComputeAuthenticator(keys, env.SignedBytes())
	return env.Marshal()
}

// sealSig seals a signed envelope from peer `from`.
func (f *ingressFixture) sealSig(from uint32, mt wire.MsgType, payload []byte) []byte {
	env := &wire.Envelope{Type: mt, Sender: from, Payload: payload, Kind: wire.AuthSig}
	env.Sig = f.kps[from].Sign(env.SignedBytes())
	return env.Marshal()
}

// TestIngressPerSenderFIFO floods a many-worker pipeline with messages
// whose verification costs differ wildly (cheap garbage drops, MAC
// checks, signature checks) and asserts the survivors reach the consumer
// in exact arrival order — the reorder buffer must mask the workers'
// out-of-order completions.
func TestIngressPerSenderFIFO(t *testing.T) {
	f := newIngressFixture(t, 8)
	const total = 400
	src := make(chan transport.Packet, total*2)
	f.in.start(src)
	defer f.in.stop()

	for seq := uint64(1); seq <= total; seq++ {
		p := wire.Prepare{View: 0, Seq: seq, Digest: crypto.DigestOf([]byte("d")), Replica: 1}
		var raw []byte
		if seq%3 == 0 {
			raw = f.sealSig(1, wire.MTPrepare, p.Marshal()) // expensive verify
		} else {
			raw = f.sealMAC(t, 1, wire.MTPrepare, p.Marshal()) // cheap verify
		}
		src <- transport.Packet{From: "r1", Data: raw}
		if seq%5 == 0 {
			src <- transport.Packet{From: "x", Data: []byte("garbage")} // instant drop
		}
	}
	close(src)

	var got []uint64
	for m := range f.in.out {
		if m.prep == nil {
			t.Fatalf("expected a decoded prepare, got %+v", m.env)
		}
		got = append(got, m.prep.Seq)
	}
	if len(got) != total {
		t.Fatalf("delivered %d of %d messages", len(got), total)
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("delivery out of order at %d: got seq %d, want %d", i, seq, i+1)
		}
	}
	if dropped := f.in.droppedMalformed.Load(); dropped != total/5 {
		t.Fatalf("dropped %d malformed, want %d garbage packets", dropped, total/5)
	}
}

// TestIngressConcurrentBadAuthCounted injects forged and garbage packets
// from several goroutines at once and checks that every one of them shows
// up in DroppedBadAuth (counted by the worker pool), while legitimate
// traffic keeps flowing. Run with -race to validate the stats path.
func TestIngressConcurrentBadAuthCounted(t *testing.T) {
	d := newProtocolDriver(t, 2)
	const (
		senders   = 4
		perSender = 25
	)
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// A prepare sealed with the WRONG key (peer 1 forging peer 0)
			// and undecodable garbage, interleaved.
			prep := wire.Prepare{View: 0, Seq: uint64(g + 1), Digest: crypto.DigestOf([]byte("x")), Replica: 0}
			env := &wire.Envelope{Type: wire.MTPrepare, Sender: 0, Payload: prep.Marshal()}
			keys := make([]crypto.SessionKey, len(d.cfg.Replicas))
			for i, ri := range d.cfg.Replicas {
				if i == 1 {
					continue
				}
				k, err := d.rkeys[1].SharedKey(ri.PubKey) // forger's keys
				if err != nil {
					t.Error(err)
					return
				}
				keys[i] = k
			}
			env.Kind = wire.AuthMAC
			env.Auth = crypto.ComputeAuthenticator(keys, env.SignedBytes())
			forged := env.Marshal()
			for i := 0; i < perSender; i++ {
				if i%2 == 0 {
					d.inject(1, forged)
				} else {
					d.inject(1, []byte{0xFF, 0xFE, byte(g), byte(i)})
				}
			}
		}(g)
	}
	wg.Wait()
	d.waitFor(func(i Info) bool {
		return i.Stats.DroppedBadAuth+i.Stats.DroppedMalformed >= senders*perSender
	}, "all forged and garbage packets counted")

	// The replica still works: a legitimate pre-prepare + prepare pair
	// drives agreement as usual.
	d.prepareSeq(1, "op-after-flood")
	d.waitFor(func(i Info) bool { return i.LastExec >= 1 }, "execution after flood")
}

// TestIngressWorkerPoolSizes exercises the FIFO pipeline at several pool
// sizes, including the degenerate single worker.
func TestIngressWorkerPoolSizes(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			f := newIngressFixture(t, workers)
			const total = 60
			src := make(chan transport.Packet, total)
			f.in.start(src)
			defer f.in.stop()
			for seq := uint64(1); seq <= total; seq++ {
				p := wire.Prepare{View: 0, Seq: seq, Digest: crypto.DigestOf([]byte("d")), Replica: 3}
				src <- transport.Packet{From: "r3", Data: f.sealMAC(t, 3, wire.MTPrepare, p.Marshal())}
			}
			close(src)
			var count, last uint64
			for m := range f.in.out {
				count++
				if m.prep.Seq != last+1 {
					t.Fatalf("out of order: %d after %d", m.prep.Seq, last)
				}
				last = m.prep.Seq
			}
			if count != total {
				t.Fatalf("delivered %d of %d", count, total)
			}
		})
	}
}

// BenchmarkVerifyPipeline measures ingress throughput — envelope decode,
// authenticator (or signature) verification, payload decode and digest
// warm-up — as the worker pool grows. This is the knob Options.
// VerifyWorkers exposes; the signature mode shows the multi-core scaling
// headroom, the MAC mode the paper's cheap-authentication regime.
func BenchmarkVerifyPipeline(b *testing.B) {
	for _, mode := range []string{"mac", "sig"} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(b *testing.B) {
				f := newIngressFixture(b, workers)
				// A realistic pre-prepare: one 1 KiB request, so each
				// packet costs an envelope decode, an auth check over
				// ~1 KiB, a payload decode and a batch digest.
				req := wire.Request{ClientID: 4, Timestamp: 1, Op: make([]byte, 1024)}
				pp := wire.PrePrepare{
					View:    0,
					Seq:     1,
					NonDet:  (&wire.NonDet{Time: 1}).Marshal(),
					Entries: []wire.BatchEntry{{Full: true, Req: req}},
				}
				var raw []byte
				if mode == "mac" {
					raw = f.sealMAC(b, 1, wire.MTPrePrepare, pp.Marshal())
				} else {
					raw = f.sealSig(1, wire.MTPrePrepare, pp.Marshal())
				}
				src := make(chan transport.Packet, 1024)
				f.in.start(src)
				drained := make(chan struct{})
				go func() {
					defer close(drained)
					for range f.in.out {
					}
				}()
				b.SetBytes(int64(len(raw)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					src <- transport.Packet{From: "r1", Data: raw}
				}
				close(src)
				<-drained
				b.StopTimer()
				f.in.stop()
			})
		}
	}
}
