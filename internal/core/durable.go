package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/crypto"
	"repro/internal/sqldb"
	"repro/internal/state"
	"repro/internal/wire"
)

// Durable replica state (Options.DataDir). Two artifacts live in the
// data directory:
//
//   - pages (+ pages.wal): the replicated state region's page image,
//     written through the WAL-backed VFS — at every stable checkpoint
//     the pages whose digests changed since the last persist are
//     written and committed with one WAL fsync.
//   - manifest: the protocol-critical minimum, replaced atomically
//     (write tmp + fsync + rename + fsync dir): stable checkpoint seq
//     and composite digest, view number, the serialized middleware
//     metadata (client dedup windows, dynamic membership generation,
//     pending joins), and the raw 2f+1 checkpoint proof.
//
// A restarted replica reloads both, verifies the chain (manifest CRC →
// metadata digest → composite digest → region root) and rejoins at its
// last stable checkpoint; the existing state transfer then fetches only
// the pages that changed since — the delta — because the syncer is
// seeded from the restored leaf digests. Any verification failure
// degrades to a diskless start (full transfer), never to divergence.
const (
	durManifestMagic   = "PBFTDUR1"
	durManifestVersion = 1
	durManifestName    = "manifest"
	durPagesName       = "pages"
)

// durManifest is the decoded manifest content.
type durManifest struct {
	seq        uint64
	view       uint64
	restarts   uint64
	digest     crypto.Digest
	root       crypto.Digest
	metaDigest crypto.Digest
	meta       []byte
	proof      [][]byte
}

// durableStore owns a replica's on-disk state. All access is confined
// to the replica's event loop (persist, info) or to NewReplica before
// the loop starts (recovery).
type durableStore struct {
	dir      string
	vfs      *sqldb.WALVFS
	pages    sqldb.File
	pageSize int
	// lastLeaves mirrors the page digests the pages file currently
	// holds; persist diffs against it to write only changed pages.
	lastLeaves []crypto.Digest
	// man is the manifest loaded at open (nil on first boot or after a
	// failed validation), consumed by the recovery stages.
	man *durManifest

	// broken latches after a persist error: the replica keeps serving
	// diskless-style (never crashes the protocol), surfacing the
	// failure through PersistErrors.
	broken        bool
	restarts      uint64
	recoveryNanos uint64
	persistErrors uint64
}

// errManifestInvalid tags manifest validation failures (short file,
// CRC, magic, version, decode, digest chain) as opposed to I/O errors
// reading the file. Only a validation failure makes it safe to delete
// the manifest — an EIO or permission error may hide valid state.
var errManifestInvalid = errors.New("core: manifest invalid")

// openDurable opens (creating if needed) the data directory, recovers
// the pages file through the WAL (torn tails truncated), and loads the
// manifest if one validates. A manifest that fails validation is
// deleted so the boot degrades to a clean first start; a transient
// read error is propagated instead, leaving the on-disk state intact.
func openDurable(dir string) (*durableStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: durable dir: %w", err)
	}
	vfs := sqldb.NewWALVFS(dir)
	pages, err := vfs.Open(durPagesName)
	if err != nil {
		return nil, fmt.Errorf("core: durable pages: %w", err)
	}
	d := &durableStore{dir: dir, vfs: vfs, pages: pages}
	man, err := loadManifest(filepath.Join(dir, durManifestName))
	switch {
	case err == nil && man != nil:
		d.man = man
		d.restarts = man.restarts + 1
	case errors.Is(err, errManifestInvalid):
		// Corrupt manifest: remove it and boot fresh.
		_ = os.Remove(filepath.Join(dir, durManifestName))
	case err != nil:
		_ = pages.Close()
		return nil, fmt.Errorf("core: durable manifest: %w", err)
	}
	return d, nil
}

// restoreRegion loads the persisted page image into the region and
// verifies it reproduces the manifest's root. Called between region
// construction and protocol start (stage A of recovery), and only when
// a manifest validated at open — without one the page content cannot
// be verified and must not touch the region.
func (d *durableStore) restoreRegion(region *state.Region) error {
	d.pageSize = region.PageSize()
	size, err := d.pages.Size()
	if err != nil {
		return err
	}
	buf := make([]byte, d.pageSize)
	zero := make([]byte, d.pageSize)
	n := region.NumPages()
	for i := 0; i < n; i++ {
		off := int64(i) * int64(d.pageSize)
		if off >= size {
			break
		}
		for j := range buf {
			buf[j] = 0
		}
		want := d.pageSize
		if off+int64(want) > size {
			want = int(size - off)
		}
		if _, err := d.pages.ReadAt(buf[:want], off); err != nil && err != io.EOF {
			return err
		}
		if bytes.Equal(buf, zero) {
			continue
		}
		if err := region.ApplyPage(i, buf); err != nil {
			return err
		}
	}
	if d.man != nil && region.Root() != d.man.root {
		return fmt.Errorf("core: durable pages do not reproduce manifest root")
	}
	return nil
}

// reset discards the on-disk state (root mismatch or manifest-less
// pages): the replica boots fresh and re-fetches over state transfer.
func (d *durableStore) reset() error {
	d.man = nil
	_ = os.Remove(filepath.Join(d.dir, durManifestName))
	if err := d.pages.Truncate(0); err != nil {
		return err
	}
	return d.pages.Sync()
}

// seedLeaves records the region's current page digests as the persisted
// baseline (call after restoreRegion or reset).
func (d *durableStore) seedLeaves(region *state.Region) {
	d.pageSize = region.PageSize()
	d.lastLeaves = append(d.lastLeaves[:0], region.LeafDigests()...)
}

// persist writes the delta of a stable checkpoint: changed pages into
// the WAL-backed pages file (one commit fsync), then the manifest,
// atomically replaced. The ordering (pages first, manifest last) keeps
// the crash window safe rather than lossless: a crash between the two
// leaves NEW page content under the OLD manifest, so the old root is
// no longer reproducible — restart detects the mismatch via the
// restoreRegion root check and degrades to a clean reset plus a full
// state transfer. The durability benefit is lost for that window, but
// the replica never serves the mixed image.
func (d *durableStore) persist(ck *ckptRecord, view uint64, proof [][]byte) error {
	for i := range d.lastLeaves {
		want, err := ck.snap.NodeDigest(0, i)
		if err != nil {
			return err
		}
		if want == d.lastLeaves[i] {
			continue
		}
		page, err := ck.snap.Page(i)
		if err != nil {
			return err
		}
		if _, err := d.pages.WriteAt(page, int64(i)*int64(d.pageSize)); err != nil {
			return err
		}
		d.lastLeaves[i] = want
	}
	if err := d.pages.Sync(); err != nil {
		return err
	}
	man := &durManifest{
		seq:        ck.seq,
		view:       view,
		restarts:   d.restarts,
		digest:     ck.digest,
		root:       ck.root,
		metaDigest: ck.metaDigest,
		meta:       ck.meta,
		proof:      proof,
	}
	if err := writeManifest(d.dir, man); err != nil {
		return err
	}
	d.man = man
	return nil
}

// close releases the pages file.
func (d *durableStore) close() {
	if d.pages != nil {
		_ = d.pages.Close()
		d.pages = nil
	}
}

// writeManifest atomically replaces the manifest: tmp file, fsync,
// rename, fsync directory. A crash at any point leaves either the old
// or the new manifest, never a torn one.
func writeManifest(dir string, m *durManifest) error {
	w := wire.NewWriter(256 + len(m.meta))
	w.Raw([]byte(durManifestMagic))
	w.U32(durManifestVersion)
	w.U64(m.seq)
	w.U64(m.view)
	w.U64(m.restarts)
	w.Raw(m.digest[:])
	w.Raw(m.root[:])
	w.Raw(m.metaDigest[:])
	w.Bytes32(m.meta)
	w.U32(uint32(len(m.proof)))
	for _, p := range m.proof {
		w.Bytes32(p)
	}
	body := w.Bytes()
	out := make([]byte, 0, len(body)+4)
	out = append(out, body...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	out = append(out, crc[:]...)

	tmp := filepath.Join(dir, durManifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, durManifestName)); err != nil {
		return err
	}
	if dirF, err := os.Open(dir); err == nil {
		_ = dirF.Sync()
		dirF.Close()
	}
	return nil
}

// loadManifest reads and validates a manifest: magic, CRC, and the
// digest chain (meta hashes to metaDigest; root+metaDigest compose to
// digest). Returns (nil, nil) when no manifest exists, an error
// wrapping errManifestInvalid when one exists but fails validation,
// and the bare I/O error when the file cannot be read.
func loadManifest(path string) (*durManifest, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(raw) < len(durManifestMagic)+4 {
		return nil, fmt.Errorf("%w: too short", errManifestInvalid)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: CRC mismatch", errManifestInvalid)
	}
	if string(body[:len(durManifestMagic)]) != durManifestMagic {
		return nil, fmt.Errorf("%w: bad magic", errManifestInvalid)
	}
	rd := wire.NewReader(body[len(durManifestMagic):])
	if v := rd.U32(); v != durManifestVersion {
		return nil, fmt.Errorf("%w: version %d unsupported", errManifestInvalid, v)
	}
	m := &durManifest{}
	m.seq = rd.U64()
	m.view = rd.U64()
	m.restarts = rd.U64()
	rd.Fixed(m.digest[:])
	rd.Fixed(m.root[:])
	rd.Fixed(m.metaDigest[:])
	m.meta = rd.Bytes32()
	n := int(rd.U32())
	for i := 0; i < n && rd.Err() == nil; i++ {
		m.proof = append(m.proof, rd.Bytes32())
	}
	if err := rd.Done(); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", errManifestInvalid, err)
	}
	if crypto.DigestOf(m.meta) != m.metaDigest {
		return nil, fmt.Errorf("%w: meta digest mismatch", errManifestInvalid)
	}
	if wire.CompositeStateDigest(m.root, m.metaDigest) != m.digest {
		return nil, fmt.Errorf("%w: composite digest mismatch", errManifestInvalid)
	}
	return m, nil
}

// recoverFromManifest is stage B of durable recovery, run by NewReplica
// after the volatile structures exist: install the persisted metadata
// and protocol counters, then re-derive the stable checkpoint record
// and verify it reproduces the manifest's agreed digest. The manifest
// was CRC- and digest-chain-validated at load and the page image
// reproduced the root, so a mismatch here means the metadata
// round-trip broke — refuse to start rather than risk divergence.
func (r *Replica) recoverFromManifest(man *durManifest) error {
	if err := r.unmarshalMeta(man.meta); err != nil {
		return fmt.Errorf("core: durable manifest meta: %w", err)
	}
	r.view = man.view
	r.lastExec = man.seq
	r.committedContig = man.seq
	if r.seq < man.seq {
		r.seq = man.seq
	}
	ck := r.recordLocalCheckpoint(man.seq)
	if ck.digest != man.digest {
		return fmt.Errorf("core: recovered state does not reproduce manifest digest %x", man.digest[:8])
	}
	ck.stable = true
	r.lastStable = man.seq
	r.stableProof = man.proof
	r.gcLog()
	return nil
}

// persistStable is the durability hook on the stable-checkpoint path
// (makeStable and the state-transfer install). Diskless replicas pay
// one nil check. A persist failure (disk full, I/O error) latches the
// store broken: the replica keeps serving in-memory and the failure is
// visible as Stats.PersistErrors.
func (r *Replica) persistStable(ck *ckptRecord) {
	d := r.durable
	if d == nil || d.broken || ck.snap == nil {
		return
	}
	if err := d.persist(ck, r.view, r.stableProof); err != nil {
		d.broken = true
		d.persistErrors++
	}
}
