package core

import (
	"testing"

	"repro/internal/wire"
)

// TestSessionLRUOrder exercises the intrusive session recency list:
// insertion order, move-to-tail on touch, and unlink from every position.
func TestSessionLRUOrder(t *testing.T) {
	tbl := newNodeTable(0)
	a := &nodeEntry{ID: 1}
	b := &nodeEntry{ID: 2}
	c := &nodeEntry{ID: 3}
	for _, e := range []*nodeEntry{a, b, c} {
		tbl.add(e)
		tbl.touchSession(e)
	}
	if got := tbl.sessionCount(); got != 3 {
		t.Fatalf("sessionCount = %d, want 3", got)
	}
	if tbl.oldestSession() != a {
		t.Fatalf("oldest = %v, want a", tbl.oldestSession().ID)
	}

	// Touching the oldest moves it behind the others.
	tbl.touchSession(a)
	if tbl.oldestSession() != b {
		t.Fatalf("after touch(a): oldest = %v, want b", tbl.oldestSession().ID)
	}
	// Touching the tail is a no-op.
	tbl.touchSession(a)
	if tbl.sessTail != a || tbl.sessionCount() != 3 {
		t.Fatal("touching the tail must not change the list")
	}

	// Unlink from the middle (c sits between b and a now).
	tbl.unlinkSession(c)
	if tbl.sessionCount() != 2 || c.sessLinked {
		t.Fatal("unlink must drop the count and clear the link flag")
	}
	if tbl.oldestSession() != b || tbl.sessTail != a {
		t.Fatal("unlink(middle) must preserve head and tail")
	}
	// Double unlink is a no-op.
	tbl.unlinkSession(c)
	if tbl.sessionCount() != 2 {
		t.Fatal("double unlink must not double-decrement")
	}

	// remove() unlinks implicitly.
	tbl.remove(b.ID)
	if tbl.sessionCount() != 1 || tbl.oldestSession() != a || tbl.sessTail != a {
		t.Fatal("remove must unlink the entry from the session list")
	}
	tbl.unlinkSession(a)
	if tbl.sessionCount() != 0 || tbl.sessHead != nil || tbl.sessTail != nil {
		t.Fatal("empty list must have nil head and tail")
	}
}

// TestClientWindowCompaction checks the compaction floor: a compacted
// window keeps deduplicating everything it ever admitted while holding no
// cached replies, and resumes normal operation when the client returns
// with higher timestamps.
func TestClientWindowCompaction(t *testing.T) {
	const w = 4
	cw := newClientWindow()
	cw.record(5, &wire.Reply{Timestamp: 5}, w)
	cw.record(6, &wire.Reply{Timestamp: 6}, w)
	if !cw.live() {
		t.Fatal("window with cached replies must be live")
	}

	cw.compact()
	if cw.live() {
		t.Fatal("compacted window must not be live")
	}
	if cw.cachedReply(6) != nil {
		t.Fatal("compaction must drop cached replies")
	}
	// Everything at or below the old maxTS is a replay now.
	for _, ts := range []uint64{1, 5, 6} {
		if !cw.executed(ts, w) {
			t.Fatalf("ts %d must count as executed after compaction", ts)
		}
	}
	if cw.executed(7, w) {
		t.Fatal("ts above the compaction floor must stay executable")
	}

	// Readmission: the client returns with a fresh (higher) timestamp.
	cw.record(9, &wire.Reply{Timestamp: 9}, w)
	if !cw.live() || !cw.executed(9, w) {
		t.Fatal("window must resume normal operation after readmission")
	}
	// The base floor persists even when the sliding floor (maxTS-W) is
	// lower: floor = max(9-4, 6) = 6, so 6 replays but 7 is still fresh.
	if !cw.executed(6, w) {
		t.Fatal("base floor must dominate the sliding floor")
	}
	if cw.executed(7, w) {
		t.Fatal("timestamps above both floors must stay executable")
	}

	// Compacting an already-compacted window is a no-op.
	base := cw.base
	cw.compact()
	if cw.base < base {
		t.Fatal("compact must never lower the base")
	}
}

// TestCompactClientWinsDeterministic checks the checkpoint-time dedup
// compaction: only live windows past the cap are compacted, victims are
// picked by lowest (maxTS, id) — replicated time, deterministic across
// replicas — and tombstones do not count against the cap.
func TestCompactClientWinsDeterministic(t *testing.T) {
	mk := func(cap int, wins map[uint32]*clientWindow) *Replica {
		return &Replica{
			cfg:        &Config{Opts: Options{MaxClientSessions: cap}},
			clientWins: wins,
		}
	}
	liveWin := func(maxTS uint64) *clientWindow {
		cw := newClientWindow()
		cw.record(maxTS, &wire.Reply{Timestamp: maxTS}, 16)
		return cw
	}

	wins := map[uint32]*clientWindow{
		10: liveWin(40),
		11: liveWin(10),
		12: liveWin(30),
		13: liveWin(20),
	}
	r := mk(2, wins)
	r.compactClientWins()
	for id, wantLive := range map[uint32]bool{10: true, 11: false, 12: true, 13: false} {
		if wins[id].live() != wantLive {
			t.Fatalf("client %d live = %v, want %v", id, wins[id].live(), wantLive)
		}
	}

	// Second run: tombstones don't count, nothing further to compact.
	r.compactClientWins()
	if !wins[10].live() || !wins[12].live() {
		t.Fatal("survivors must not be compacted on a quiescent re-run")
	}

	// Tie on maxTS: the lower id goes first.
	wins = map[uint32]*clientWindow{
		20: liveWin(50),
		21: liveWin(50),
		22: liveWin(50),
	}
	mk(2, wins).compactClientWins()
	if wins[20].live() {
		t.Fatal("tie on maxTS must compact the lowest id")
	}
	if !wins[21].live() || !wins[22].live() {
		t.Fatal("tie on maxTS must spare the higher ids")
	}

	// Cap <= 0 disables compaction entirely.
	wins = map[uint32]*clientWindow{30: liveWin(1), 31: liveWin(2)}
	mk(-1, wins).compactClientWins()
	if !wins[30].live() || !wins[31].live() {
		t.Fatal("negative cap must disable compaction")
	}
}
