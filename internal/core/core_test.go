package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/transport"
	"repro/internal/wire"
)

// testConfig builds a minimal valid config with n replicas and m clients.
func testConfig(t *testing.T, f, clients int) (*Config, []*crypto.KeyPair, []*crypto.KeyPair) {
	t.Helper()
	n := 3*f + 1
	opts := DefaultOptions()
	opts.F = f
	opts.StateSize = 1 << 20
	opts.PageSize = 256
	opts.CheckpointInterval = 8
	cfg := &Config{Opts: opts}
	rkeys := make([]*crypto.KeyPair, n)
	for i := 0; i < n; i++ {
		kp, err := crypto.GenerateKeyPair(nil)
		if err != nil {
			t.Fatal(err)
		}
		rkeys[i] = kp
		cfg.Replicas = append(cfg.Replicas, NodeInfo{ID: uint32(i), Addr: fmt.Sprintf("r%d", i), PubKey: kp.Public()})
	}
	ckeys := make([]*crypto.KeyPair, clients)
	for i := 0; i < clients; i++ {
		kp, err := crypto.GenerateKeyPair(nil)
		if err != nil {
			t.Fatal(err)
		}
		ckeys[i] = kp
		cfg.Clients = append(cfg.Clients, NodeInfo{ID: uint32(n + i), Addr: fmt.Sprintf("c%d", i), PubKey: kp.Public()})
	}
	return cfg, rkeys, ckeys
}

type nopApp struct{}

func (nopApp) Execute(op []byte, nd NonDetValues, readOnly bool) []byte { return op }

// newTestReplica builds an unstarted replica on an in-memory network.
func newTestReplica(t *testing.T, cfg *Config, id uint32, kp *crypto.KeyPair) *Replica {
	t.Helper()
	net := transport.NewNetwork(int64(id) + 1)
	t.Cleanup(func() { net.Close() })
	conn, err := net.Listen(cfg.Replicas[id].Addr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplica(cfg, id, kp, conn, nopApp{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidate(t *testing.T) {
	cfg, _, _ := testConfig(t, 1, 2)
	tests := []struct {
		name    string
		mutate  func(c *Config)
		wantErr bool
	}{
		{"valid", func(c *Config) {}, false},
		{"zero F", func(c *Config) { c.Opts.F = 0 }, true},
		{"too few replicas", func(c *Config) { c.Replicas = c.Replicas[:3] }, true},
		{"bad replica id", func(c *Config) { c.Replicas[2].ID = 7 }, true},
		{"client collides with replica", func(c *Config) { c.Clients[0].ID = 1 }, true},
		{"duplicate client", func(c *Config) { c.Clients[1].ID = c.Clients[0].ID }, true},
		{"zero checkpoint interval", func(c *Config) { c.Opts.CheckpointInterval = 0 }, true},
		{"zero state size", func(c *Config) { c.Opts.StateSize = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := *cfg
			c.Replicas = append([]NodeInfo(nil), cfg.Replicas...)
			c.Clients = append([]NodeInfo(nil), cfg.Clients...)
			tt.mutate(&c)
			if err := c.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestConfigDerivedValues(t *testing.T) {
	cfg, _, _ := testConfig(t, 2, 0)
	if cfg.N() != 7 || cfg.Quorum() != 5 {
		t.Fatalf("N=%d Quorum=%d", cfg.N(), cfg.Quorum())
	}
	if cfg.Primary(0) != 0 || cfg.Primary(7) != 0 || cfg.Primary(9) != 2 {
		t.Fatal("primary rotation wrong")
	}
	if cfg.LogWindow() != 16 { // 2 * CheckpointInterval(8)
		t.Fatalf("LogWindow = %d", cfg.LogWindow())
	}
	cfg.Opts.LogWindow = 100
	if cfg.LogWindow() != 100 {
		t.Fatalf("explicit LogWindow = %d", cfg.LogWindow())
	}
}

func TestIsBig(t *testing.T) {
	cfg, _, _ := testConfig(t, 1, 0)
	cfg.Opts.AllBig = true
	if !cfg.IsBig(1) {
		t.Fatal("AllBig must make everything big")
	}
	cfg.Opts.AllBig = false
	cfg.Opts.BigThreshold = 0
	if cfg.IsBig(1 << 20) {
		t.Fatal("threshold 0 without AllBig means never big")
	}
	cfg.Opts.BigThreshold = 100
	if cfg.IsBig(99) || !cfg.IsBig(100) {
		t.Fatal("threshold boundary wrong")
	}
}

func TestRobustOptions(t *testing.T) {
	o := DefaultOptions().Robust()
	if o.UseMACs || o.AllBig {
		t.Fatal("Robust must disable MACs and big-request handling")
	}
	if !o.Batching {
		t.Fatal("Robust keeps batching (the paper found it safe)")
	}
}

func TestNodeTable(t *testing.T) {
	nt := newNodeTable(3)
	nt.add(&nodeEntry{ID: 0, Addr: "r0"})
	nt.add(&nodeEntry{ID: 9, Addr: "c9", Dynamic: true, Principal: "alice", LastActive: 100})
	nt.add(&nodeEntry{ID: 5, Addr: "c5", Dynamic: true, Principal: "bob", LastActive: 300})
	if !nt.full() {
		t.Fatal("table at capacity must report full")
	}
	if nt.get(9) == nil || nt.get(77) != nil {
		t.Fatal("lookup wrong")
	}
	if got := nt.byPrincipal("alice"); len(got) != 1 || got[0].ID != 9 {
		t.Fatalf("byPrincipal = %v", got)
	}
	if got := nt.staleBefore(200); len(got) != 1 || got[0].ID != 9 {
		t.Fatalf("staleBefore = %v", got)
	}
	ids := nt.sortedIDs()
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 5 || ids[2] != 9 {
		t.Fatalf("sortedIDs = %v", ids)
	}
	nt.remove(9)
	if nt.full() || nt.get(9) != nil {
		t.Fatal("remove failed")
	}
}

func TestNodeTableDynamicRoundTrip(t *testing.T) {
	kp, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	nt := newNodeTable(10)
	nt.add(&nodeEntry{ID: 0, Addr: "r0"}) // static: excluded from the blob
	nt.add(&nodeEntry{ID: 900, Addr: "c900", Pub: kp.Public(), Dynamic: true, Principal: "p1", LastActive: 42})
	nt.add(&nodeEntry{ID: 901, Addr: "c901", Pub: kp.Public(), Dynamic: true, Principal: "p2", LastActive: 43})
	blob := nt.marshalDynamic()

	nt2 := newNodeTable(10)
	nt2.add(&nodeEntry{ID: 0, Addr: "r0"})
	nt2.add(&nodeEntry{ID: 555, Addr: "stale", Dynamic: true}) // replaced by install
	if err := nt2.unmarshalDynamic(blob); err != nil {
		t.Fatal(err)
	}
	if nt2.get(555) != nil {
		t.Fatal("stale dynamic entry must be replaced")
	}
	if nt2.get(0) == nil {
		t.Fatal("static entries must survive installs")
	}
	e := nt2.get(900)
	if e == nil || e.Addr != "c900" || e.Principal != "p1" || e.LastActive != 42 || !e.Dynamic {
		t.Fatalf("entry 900 = %+v", e)
	}
	// Determinism: the blob must be identical regardless of insertion
	// order (it feeds checkpoint digests).
	nt3 := newNodeTable(10)
	nt3.add(&nodeEntry{ID: 901, Addr: "c901", Pub: kp.Public(), Dynamic: true, Principal: "p2", LastActive: 43})
	nt3.add(&nodeEntry{ID: 900, Addr: "c900", Pub: kp.Public(), Dynamic: true, Principal: "p1", LastActive: 42})
	if string(nt3.marshalDynamic()) != string(blob) {
		t.Fatal("dynamic blob must be order-independent")
	}
	if err := nt2.unmarshalDynamic([]byte{0, 0}); err == nil {
		t.Fatal("truncated blob must be rejected")
	}
}

func TestEntryCertificates(t *testing.T) {
	e := newEntry(5)
	d1 := crypto.DigestOf([]byte("batch1"))
	d2 := crypto.DigestOf([]byte("other"))
	e.digest = d1
	e.prepares[1] = d1
	e.prepares[2] = d2 // conflicting digest must not count
	e.prepares[3] = d1
	if got := e.countPrepares(); got != 2 {
		t.Fatalf("countPrepares = %d, want 2", got)
	}
	e.commits[0] = d1
	e.commits[1] = d1
	e.commits[2] = d1
	e.commits[3] = d2
	if got := e.countCommits(); got != 3 {
		t.Fatalf("countCommits = %d, want 3", got)
	}
	pp := &wire.PrePrepare{View: 2, Seq: 5}
	e.resetForView(2, pp, []byte("raw"), d2)
	if e.countPrepares() != 0 || e.countCommits() != 0 || e.prepared || e.committed || e.sentPrepare || e.sentCommit {
		t.Fatal("resetForView must clear certificates")
	}
	if e.view != 2 || e.digest != d2 {
		t.Fatal("resetForView must install the new assignment")
	}
}

func TestReplicaMetaRoundTrip(t *testing.T) {
	cfg, rkeys, _ := testConfig(t, 1, 1)
	cfg.Opts.DynamicClients = true
	r := newTestReplica(t, cfg, 0, rkeys[0])
	defer func() {
		r.Start()
		r.Stop()
	}()

	// Populate every replicated-metadata structure. Client 100 has a
	// pipelined window: timestamps 5 and 7 executed, 6 still outstanding.
	cw := r.clientWin(100)
	cw.record(5, &wire.Reply{Timestamp: 5, ClientID: 100, Result: []byte("old")}, cfg.ClientWindow())
	cw.record(7, &wire.Reply{Timestamp: 7, ClientID: 100, Result: []byte("cached")}, cfg.ClientWindow())
	kp, err := crypto.GenerateKeyPair(nil)
	if err != nil {
		t.Fatal(err)
	}
	pubRaw := crypto.MarshalPublicKey(kp.Public())
	r.nodes.add(&nodeEntry{ID: 900, Addr: "dyn", Pub: kp.Public(), Dynamic: true, Principal: "p", LastActive: 5})
	r.pendingJoins["k1"] = &pendingJoin{
		addr: "a", pubRaw: pubRaw, pub: kp.Public(), nonce: 3,
		appAuth: []byte("auth"), challenge: crypto.DigestOf([]byte("ch")), ts: 9,
	}
	r.idSeed = 17

	blob := r.marshalMeta()

	r2 := newTestReplica(t, cfg, 1, rkeys[1])
	defer func() {
		r2.Start()
		r2.Stop()
	}()
	if err := r2.unmarshalMeta(blob); err != nil {
		t.Fatal(err)
	}
	cw2 := r2.clientWins[100]
	if cw2 == nil || cw2.maxTS != 7 {
		t.Fatalf("client window lost: %+v", cw2)
	}
	if !cw2.executed(5, cfg.ClientWindow()) || !cw2.executed(7, cfg.ClientWindow()) {
		t.Fatal("executed timestamps lost")
	}
	if cw2.executed(6, cfg.ClientWindow()) {
		t.Fatal("outstanding timestamp 6 must stay executable")
	}
	rep := cw2.cachedReply(7)
	if rep == nil || string(rep.Result) != "cached" {
		t.Fatalf("reply cache lost: %+v", rep)
	}
	if rep.Replica != r2.id {
		t.Fatal("restored replies must be rehydrated with the local replica id")
	}
	if r2.nodes.get(900) == nil {
		t.Fatal("dynamic membership lost")
	}
	pj := r2.pendingJoins["k1"]
	if pj == nil || pj.nonce != 3 || pj.addr != "a" || string(pj.appAuth) != "auth" || pj.ts != 9 {
		t.Fatalf("pending join lost: %+v", pj)
	}
	if r2.idSeed != 17 {
		t.Fatal("id seed lost")
	}
	// Determinism: marshal must be stable.
	if string(r2.marshalMeta()) != string(blob) {
		t.Fatal("meta blob must round-trip byte-identically")
	}
	if err := r2.unmarshalMeta(blob[:4]); err == nil {
		t.Fatal("truncated meta must be rejected")
	}
}

func TestAuthenticatorSealVerify(t *testing.T) {
	cfg, rkeys, ckeys := testConfig(t, 1, 1)
	r0 := newTestReplica(t, cfg, 0, rkeys[0])
	r1 := newTestReplica(t, cfg, 1, rkeys[1])
	defer func() {
		r0.Start()
		r0.Stop()
		r1.Start()
		r1.Stop()
	}()

	// Replica-to-replica MAC mode (verified by the ingress stage).
	env := r0.sealToReplicas(wire.MTPrepare, []byte("payload"))
	if !r1.ingress.verifyFromReplica(env) {
		t.Fatal("peer must verify an authentic MAC envelope")
	}
	if r0.ingress.verifyFromReplica(env) {
		t.Fatal("a replica must not accept its own sender id")
	}
	tampered := *env
	tampered.Payload = []byte("tampered")
	if r1.ingress.verifyFromReplica(&tampered) {
		t.Fatal("tampered payload must fail")
	}

	// Signed mode.
	signed := r0.sealSigned(wire.MTViewChange, []byte("vc"))
	if !r1.verifySignedReplica(signed) {
		t.Fatal("peer must verify a signed envelope")
	}
	badSig := *signed
	badSig.Sender = 2
	if r1.verifySignedReplica(&badSig) {
		t.Fatal("wrong claimed sender must fail")
	}

	// Client without a session in MAC mode is refused (the §2.3 gate).
	clientEnv := &wire.Envelope{Type: wire.MTRequest, Sender: 4, Payload: []byte("op"), Kind: wire.AuthMAC}
	if r0.ingress.verifyFromClient(clientEnv) {
		t.Fatal("client MAC without session key material must fail")
	}

	// Client with a signature verifies against the published auth view.
	sigEnv := &wire.Envelope{Type: wire.MTRequest, Sender: 4, Payload: []byte("op"), Kind: wire.AuthSig}
	sigEnv.Sig = ckeys[0].Sign(sigEnv.SignedBytes())
	if !r0.ingress.verifyFromClient(sigEnv) {
		t.Fatal("signed client envelope must verify")
	}
	// Unknown sender id: the redirection-table check fires before any
	// cryptography (§3.1).
	ghost := *sigEnv
	ghost.Sender = 999
	if r0.ingress.verifyFromClient(&ghost) {
		t.Fatal("unknown client id must be dropped")
	}
}

func TestComputeO(t *testing.T) {
	mkPP := func(view, seq uint64, op string) []byte {
		pp := wire.PrePrepare{View: view, Seq: seq, Entries: []wire.BatchEntry{
			{Full: true, Req: wire.Request{ClientID: 1, Timestamp: seq, Op: []byte(op)}},
		}}
		env := wire.Envelope{Type: wire.MTPrePrepare, Sender: 0, Payload: pp.Marshal()}
		return env.Marshal()
	}
	votes := []*vcRecord{
		{vc: &wire.ViewChange{NewView: 2, LastStable: 8, Replica: 0, Prepared: []wire.PreparedInfo{
			{Seq: 9, View: 0, PPRaw: mkPP(0, 9, "old9")},
			{Seq: 11, View: 1, PPRaw: mkPP(1, 11, "new11")},
		}}},
		{vc: &wire.ViewChange{NewView: 2, LastStable: 8, Replica: 1, Prepared: []wire.PreparedInfo{
			{Seq: 9, View: 1, PPRaw: mkPP(1, 9, "new9")}, // higher view wins
		}}},
		{vc: &wire.ViewChange{NewView: 2, LastStable: 6, Replica: 2}},
	}
	o := computeO(2, votes)
	// min-s = 8 (max last stable), max-s = 11 -> seqs 9, 10, 11.
	if len(o) != 3 {
		t.Fatalf("|O| = %d, want 3", len(o))
	}
	if o[0].Seq != 9 || string(o[0].Entries[0].Req.Op) != "new9" {
		t.Fatalf("seq 9 = %+v (must pick the higher-view prepared batch)", o[0])
	}
	if o[1].Seq != 10 || len(o[1].Entries) != 0 {
		t.Fatalf("seq 10 must be a null request: %+v", o[1])
	}
	if o[2].Seq != 11 || string(o[2].Entries[0].Req.Op) != "new11" {
		t.Fatalf("seq 11 = %+v", o[2])
	}
	for _, pp := range o {
		if pp.View != 2 {
			t.Fatal("re-proposed pre-prepares must carry the new view")
		}
	}
	if got := computeO(2, votes[2:]); len(got) != 0 {
		t.Fatalf("no prepared certificates -> empty O, got %d", len(got))
	}
}

func TestAllocateClientIDAvoidsCollisions(t *testing.T) {
	cfg, rkeys, _ := testConfig(t, 1, 0)
	cfg.Opts.DynamicClients = true
	r := newTestReplica(t, cfg, 0, rkeys[0])
	defer func() {
		r.Start()
		r.Stop()
	}()
	seen := make(map[uint32]bool)
	for i := 0; i < 200; i++ {
		id := r.allocateClientID([]byte("same-pubkey"))
		if int(id) < r.n || id == JoinSender {
			t.Fatalf("allocated reserved id %d", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		r.nodes.add(&nodeEntry{ID: id, Dynamic: true})
	}
	// Determinism: a fresh replica with the same seed sequence produces
	// the same ids (all replicas must agree, §3.1).
	r2 := newTestReplica(t, cfg, 1, rkeys[1])
	defer func() {
		r2.Start()
		r2.Stop()
	}()
	id2 := r2.allocateClientID([]byte("same-pubkey"))
	for id := range seen {
		if id == id2 {
			return // first allocation matches one of r's (the first)
		}
	}
	t.Fatalf("allocation not deterministic: %d", id2)
}

func TestJoinChallengeDeterminism(t *testing.T) {
	a := joinChallengeDigest([]byte("pk"), 1, 10)
	b := joinChallengeDigest([]byte("pk"), 1, 10)
	if a != b {
		t.Fatal("challenge must be deterministic")
	}
	if joinChallengeDigest([]byte("pk"), 2, 10) == a {
		t.Fatal("challenge must depend on the nonce")
	}
	if joinChallengeDigest([]byte("pk"), 1, 11) == a {
		t.Fatal("challenge must depend on the sequence number")
	}
	resp := JoinResponseDigest(a, 1)
	if resp == JoinResponseDigest(a, 2) || resp == JoinResponseDigest(b, 3) {
		t.Fatal("response must bind challenge and nonce")
	}
}

func TestNonDetDefaults(t *testing.T) {
	cfg, rkeys, _ := testConfig(t, 1, 0)
	cfg.Opts.MaxTimeDrift = time.Second
	r := newTestReplica(t, cfg, 0, rkeys[0])
	defer func() {
		r.Start()
		r.Stop()
	}()
	base := time.Unix(1000, 0)
	r.now = func() time.Time { return base }

	nd := r.defaultNonDetProvider()
	if nd.Time != uint64(base.UnixNano()) {
		t.Fatal("provider must use the clock")
	}
	var zero [32]byte
	if nd.Rand == zero {
		t.Fatal("provider must derive a random seed")
	}
	if !r.defaultNonDetValidator(nd) {
		t.Fatal("fresh timestamp must validate")
	}
	stale := wire.NonDet{Time: uint64(base.Add(-2 * time.Second).UnixNano())}
	if r.defaultNonDetValidator(stale) {
		t.Fatal("stale timestamp must fail the time-delta check (§2.5)")
	}
	future := wire.NonDet{Time: uint64(base.Add(2 * time.Second).UnixNano())}
	if r.defaultNonDetValidator(future) {
		t.Fatal("future timestamp must fail")
	}
	r.cfg.Opts.ValidateNonDet = false
	if !r.defaultNonDetValidator(stale) {
		t.Fatal("validation disabled must accept anything")
	}
}

func TestReplicaRejectsBadIDs(t *testing.T) {
	cfg, rkeys, _ := testConfig(t, 1, 0)
	net := transport.NewNetwork(1)
	defer net.Close()
	conn, err := net.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplica(cfg, 99, rkeys[0], conn, nopApp{}); err == nil {
		t.Fatal("out-of-range replica id must be rejected")
	}
}

func TestInspectOnStoppedReplica(t *testing.T) {
	cfg, rkeys, _ := testConfig(t, 1, 0)
	r := newTestReplica(t, cfg, 0, rkeys[0])
	r.Start()
	r.Stop()
	info := r.Info() // must not deadlock after stop
	if info.View != 0 {
		t.Fatalf("view = %d", info.View)
	}
	r.Stop() // idempotent
}
