package core

import (
	"sort"

	"repro/internal/wire"
)

// clientWindow is the per-client sliding window of executed request
// timestamps. The original implementation kept a single (lastReqTS,
// replyCache) pair per client, which forces one outstanding request per
// client: a pipelined client whose requests are ordered out of timestamp
// order would see the lower timestamps dropped as duplicates. The window
// instead remembers every executed timestamp in (maxTS-W, maxTS] together
// with its cached reply, so up to W requests per client can be in flight
// at once and still be deduplicated exactly.
//
// Whether a request is a duplicate decides whether it executes, so this
// structure is replicated state: it is folded into checkpoint digests
// (marshalMeta), shipped during state transfer, and restored on rollback.
// W comes from Options.ClientWindow and must therefore be identical at
// every replica.
type clientWindow struct {
	maxTS uint64                 // highest executed timestamp
	done  map[uint64]*wire.Reply // executed timestamps in (maxTS-W, maxTS]
}

func newClientWindow() *clientWindow {
	return &clientWindow{done: make(map[uint64]*wire.Reply)}
}

// floor returns the exclusive lower bound of the window: timestamps at or
// below it are treated as executed long ago.
func (cw *clientWindow) floor(w uint64) uint64 {
	if cw.maxTS <= w {
		return 0
	}
	return cw.maxTS - w
}

// executed reports whether ts was already executed (or slid below the
// window, which counts as executed: the client has long since moved on).
func (cw *clientWindow) executed(ts, w uint64) bool {
	if ts <= cw.floor(w) {
		return true
	}
	_, ok := cw.done[ts]
	return ok
}

// cachedReply returns the retained reply for an executed timestamp, or nil
// when the timestamp slid out of the window (the client then only gets an
// answer from replicas that still hold it, or times out — same as the old
// single-entry cache once a newer request overwrote it).
func (cw *clientWindow) cachedReply(ts uint64) *wire.Reply {
	return cw.done[ts]
}

// record marks ts executed with its reply and slides the window forward.
func (cw *clientWindow) record(ts uint64, rep *wire.Reply, w uint64) {
	cw.done[ts] = rep
	if ts > cw.maxTS {
		cw.maxTS = ts
	}
	floor := cw.floor(w)
	for t := range cw.done {
		if t <= floor {
			delete(cw.done, t)
		}
	}
}

// attach fills in the cached reply for a timestamp recorded earlier
// (execution completes asynchronously on the engine). A timestamp that
// already slid out of the window is left alone — the same information
// loss serial execution has when a newer request pushes the floor past
// an older one.
func (cw *clientWindow) attach(ts uint64, rep *wire.Reply) {
	if _, ok := cw.done[ts]; ok {
		cw.done[ts] = rep
	}
}

// sortedTS returns the executed timestamps in ascending order (canonical
// serialization order).
func (cw *clientWindow) sortedTS() []uint64 {
	out := make([]uint64, 0, len(cw.done))
	for t := range cw.done {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// clientWin returns (creating if needed) the window for one client.
func (r *Replica) clientWin(id uint32) *clientWindow {
	cw, ok := r.clientWins[id]
	if !ok {
		cw = newClientWindow()
		r.clientWins[id] = cw
	}
	return cw
}
