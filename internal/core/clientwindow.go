package core

import (
	"sort"

	"repro/internal/wire"
)

// clientWindow is the per-client sliding window of executed request
// timestamps. The original implementation kept a single (lastReqTS,
// replyCache) pair per client, which forces one outstanding request per
// client: a pipelined client whose requests are ordered out of timestamp
// order would see the lower timestamps dropped as duplicates. The window
// instead remembers every executed timestamp in (maxTS-W, maxTS] together
// with its cached reply, so up to W requests per client can be in flight
// at once and still be deduplicated exactly.
//
// Whether a request is a duplicate decides whether it executes, so this
// structure is replicated state: it is folded into checkpoint digests
// (marshalMeta), shipped during state transfer, and restored on rollback.
// W comes from Options.ClientWindow and must therefore be identical at
// every replica.
type clientWindow struct {
	maxTS uint64                 // highest executed timestamp
	done  map[uint64]*wire.Reply // executed timestamps in (maxTS-W, maxTS]
	// base is the compaction floor: timestamps at or below it count as
	// executed even when the sliding floor (maxTS - W) sits lower. The
	// deterministic checkpoint compaction (compactClientWins) raises it
	// to maxTS when it drops a window's cached replies, so an evicted
	// client that is readmitted later cannot replay its old requests.
	// Replicated state, like the rest of the window.
	base uint64
}

func newClientWindow() *clientWindow {
	return &clientWindow{done: make(map[uint64]*wire.Reply)}
}

// floor returns the exclusive lower bound of the window: timestamps at or
// below it are treated as executed long ago.
func (cw *clientWindow) floor(w uint64) uint64 {
	f := uint64(0)
	if cw.maxTS > w {
		f = cw.maxTS - w
	}
	if cw.base > f {
		f = cw.base
	}
	return f
}

// executed reports whether ts was already executed (or slid below the
// window, which counts as executed: the client has long since moved on).
func (cw *clientWindow) executed(ts, w uint64) bool {
	if ts <= cw.floor(w) {
		return true
	}
	_, ok := cw.done[ts]
	return ok
}

// cachedReply returns the retained reply for an executed timestamp, or nil
// when the timestamp slid out of the window (the client then only gets an
// answer from replicas that still hold it, or times out — same as the old
// single-entry cache once a newer request overwrote it).
func (cw *clientWindow) cachedReply(ts uint64) *wire.Reply {
	return cw.done[ts]
}

// record marks ts executed with its reply and slides the window forward.
func (cw *clientWindow) record(ts uint64, rep *wire.Reply, w uint64) {
	cw.done[ts] = rep
	if ts > cw.maxTS {
		cw.maxTS = ts
	}
	floor := cw.floor(w)
	for t := range cw.done {
		if t <= floor {
			delete(cw.done, t)
		}
	}
}

// attach fills in the cached reply for a timestamp recorded earlier
// (execution completes asynchronously on the engine). A timestamp that
// already slid out of the window is left alone — the same information
// loss serial execution has when a newer request pushes the floor past
// an older one.
func (cw *clientWindow) attach(ts uint64, rep *wire.Reply) {
	if _, ok := cw.done[ts]; ok {
		cw.done[ts] = rep
	}
}

// sortedTS returns the executed timestamps in ascending order (canonical
// serialization order).
func (cw *clientWindow) sortedTS() []uint64 {
	out := make([]uint64, 0, len(cw.done))
	for t := range cw.done {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// clientWin returns (creating if needed) the window for one client.
func (r *Replica) clientWin(id uint32) *clientWindow {
	cw, ok := r.clientWins[id]
	if !ok {
		cw = newClientWindow()
		r.clientWins[id] = cw
	}
	return cw
}

// live reports whether the window still holds cached state (a compacted
// window is a tombstone: replay floor only).
func (cw *clientWindow) live() bool { return len(cw.done) > 0 }

// compact drops the cached replies and raises the replay floor to cover
// everything the window ever admitted.
func (cw *clientWindow) compact() {
	if cw.base < cw.maxTS {
		cw.base = cw.maxTS
	}
	clear(cw.done)
}

// compactClientWins bounds the dedup-window population to
// MaxClientSessions by compacting the windows with the lowest (maxTS, id)
// — the clients that have been quiet longest by replicated time — down to
// tombstones. Runs at checkpoints, on identical input at every replica
// with an identical cap (MaxClientSessions is part of the replicated
// contract), so the surviving set and thus the checkpoint digest agree.
func (r *Replica) compactClientWins() {
	cap := r.cfg.MaxClientSessions()
	if cap <= 0 {
		return
	}
	live := 0
	for _, cw := range r.clientWins {
		if cw.live() {
			live++
		}
	}
	excess := live - cap
	if excess <= 0 {
		return
	}
	type victim struct {
		id uint32
		cw *clientWindow
	}
	victims := make([]victim, 0, live)
	for id, cw := range r.clientWins {
		if cw.live() {
			victims = append(victims, victim{id, cw})
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].cw.maxTS != victims[j].cw.maxTS {
			return victims[i].cw.maxTS < victims[j].cw.maxTS
		}
		return victims[i].id < victims[j].id
	})
	for _, v := range victims[:excess] {
		v.cw.compact()
	}
}
