package core

import (
	"testing"
	"time"

	"repro/internal/crypto"
	"repro/internal/transport"
	"repro/internal/wire"
)

// protocolDriver runs one real replica and impersonates its peers,
// injecting authenticated protocol messages directly — a white-box
// message-level test harness.
type protocolDriver struct {
	t     *testing.T
	cfg   *Config
	rkeys []*crypto.KeyPair
	net   *transport.Network
	rep   *Replica
	conns map[uint32]transport.Conn // fake peer endpoints
}

// newProtocolDriver starts replica `id` for real and endpoints for every
// other replica.
func newProtocolDriver(t *testing.T, id uint32) *protocolDriver {
	t.Helper()
	cfg, rkeys, _ := testConfig(t, 1, 1)
	cfg.Opts.TentativeExecution = true
	cfg.Opts.ViewChangeTimeout = time.Hour // driven manually
	cfg.Opts.StatusInterval = time.Hour    // no background chatter
	net := transport.NewNetwork(5)
	t.Cleanup(func() { net.Close() })

	conn, err := net.Listen(cfg.Replicas[id].Addr)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(cfg, id, rkeys[id], conn, nopApp{})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	t.Cleanup(rep.Stop)

	d := &protocolDriver{t: t, cfg: cfg, rkeys: rkeys, net: net, rep: rep, conns: make(map[uint32]transport.Conn)}
	for i := range cfg.Replicas {
		if uint32(i) == id {
			continue
		}
		c, err := net.Listen(cfg.Replicas[i].Addr)
		if err != nil {
			t.Fatal(err)
		}
		d.conns[uint32(i)] = c
	}
	return d
}

// sealFrom authenticates an envelope exactly as peer `from` would.
func (d *protocolDriver) sealFrom(from uint32, t wire.MsgType, payload []byte, signed bool) []byte {
	env := &wire.Envelope{Type: t, Sender: from, Payload: payload}
	if signed || !d.cfg.Opts.UseMACs {
		env.Kind = wire.AuthSig
		env.Sig = d.rkeys[from].Sign(env.SignedBytes())
		return env.Marshal()
	}
	keys := make([]crypto.SessionKey, len(d.cfg.Replicas))
	for i, ri := range d.cfg.Replicas {
		if uint32(i) == from {
			continue
		}
		k, err := d.rkeys[from].SharedKey(ri.PubKey)
		if err != nil {
			d.t.Fatal(err)
		}
		keys[i] = k
	}
	env.Kind = wire.AuthMAC
	env.Auth = crypto.ComputeAuthenticator(keys, env.SignedBytes())
	return env.Marshal()
}

// inject delivers a sealed message from peer `from` to the replica.
func (d *protocolDriver) inject(from uint32, raw []byte) {
	if err := d.conns[from].Send(d.cfg.Replicas[d.rep.id].Addr, raw); err != nil {
		d.t.Fatal(err)
	}
}

// waitFor polls Info until cond holds.
func (d *protocolDriver) waitFor(cond func(Info) bool, what string) Info {
	deadline := time.Now().Add(5 * time.Second)
	for {
		info := d.rep.Info()
		if cond(info) {
			return info
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("timed out waiting for %s; info=%+v", what, info)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// prepareSeq drives sequence number seq to the prepared state at the
// replica (pre-prepare from the primary plus one backup prepare; with the
// replica's own prepare that makes 2f = 2).
func (d *protocolDriver) prepareSeq(seq uint64, op string) *wire.PrePrepare {
	nd := wire.NonDet{Time: uint64(time.Now().UnixNano())}
	pp := &wire.PrePrepare{
		View:   0,
		Seq:    seq,
		NonDet: nd.Marshal(),
		Entries: []wire.BatchEntry{
			{Full: true, Req: wire.Request{ClientID: 4, Timestamp: seq, Op: []byte(op)}},
		},
	}
	d.inject(0, d.sealFrom(0, wire.MTPrePrepare, pp.Marshal(), false))
	prep := wire.Prepare{View: 0, Seq: seq, Digest: pp.BatchDigest(), Replica: 1}
	d.inject(1, d.sealFrom(1, wire.MTPrepare, prep.Marshal(), false))
	return pp
}

// commitSeq adds 2f+1 commits (replica's own plus two peers).
func (d *protocolDriver) commitSeq(pp *wire.PrePrepare) {
	for _, peer := range []uint32{0, 1} {
		cm := wire.Commit{View: 0, Seq: pp.Seq, Digest: pp.BatchDigest(), Replica: peer}
		d.inject(peer, d.sealFrom(peer, wire.MTCommit, cm.Marshal(), false))
	}
}

func TestTentativeExecutionThenCommitUpgrade(t *testing.T) {
	d := newProtocolDriver(t, 3)
	pp := d.prepareSeq(1, "op-a")
	// Prepared => tentative execution.
	d.waitFor(func(i Info) bool { return i.LastExec == 1 }, "tentative execution")
	// Commits upgrade it; no re-execution (Executed stays 1).
	d.commitSeq(pp)
	info := d.waitFor(func(i Info) bool { return i.Stats.Executed == 1 }, "commit upgrade")
	if info.LastExec != 1 {
		t.Fatalf("lastExec = %d", info.LastExec)
	}
}

func TestTentativeRollbackOnViewChange(t *testing.T) {
	d := newProtocolDriver(t, 3)
	// Seq 1 commits fully; seq 2 only prepares (tentative execution).
	pp1 := d.prepareSeq(1, "committed")
	d.commitSeq(pp1)
	d.waitFor(func(i Info) bool { return i.LastExec == 1 }, "seq 1 executed")
	d.prepareSeq(2, "tentative")
	d.waitFor(func(i Info) bool { return i.LastExec == 2 }, "seq 2 tentatively executed")

	// Two peers vote for view 1: the f+1 rule pulls the replica into
	// the view change, which must roll back the tentative execution of
	// seq 2 (back to the committed prefix, seq 1).
	for _, peer := range []uint32{1, 2} {
		vc := wire.ViewChange{NewView: 1, LastStable: 0, Replica: peer}
		d.inject(peer, d.sealFrom(peer, wire.MTViewChange, vc.Marshal(), true))
	}
	info := d.waitFor(func(i Info) bool { return i.InViewChange }, "view change entered")
	if info.LastExec != 1 {
		t.Fatalf("rollback must rewind to the committed prefix: lastExec = %d, want 1", info.LastExec)
	}
	if info.Stats.ViewChanges == 0 {
		t.Fatal("view change not recorded")
	}
}

func TestConflictingPrePrepareIgnored(t *testing.T) {
	d := newProtocolDriver(t, 3)
	pp := d.prepareSeq(1, "first")
	d.waitFor(func(i Info) bool { return i.LastExec == 1 }, "first assignment executed")

	// An equivocating primary re-assigns seq 1 to different content in
	// the same view: the replica must keep the first assignment.
	evil := &wire.PrePrepare{
		View:   0,
		Seq:    1,
		NonDet: pp.NonDet,
		Entries: []wire.BatchEntry{
			{Full: true, Req: wire.Request{ClientID: 4, Timestamp: 99, Op: []byte("evil")}},
		},
	}
	d.inject(0, d.sealFrom(0, wire.MTPrePrepare, evil.Marshal(), false))
	time.Sleep(50 * time.Millisecond)
	info := d.rep.Info()
	if info.LastExec != 1 || info.Stats.Executed != 1 {
		t.Fatalf("conflicting assignment must not change execution: %+v", info)
	}
}

func TestWatermarkRejection(t *testing.T) {
	d := newProtocolDriver(t, 3)
	// Far beyond the high watermark (lastStable 0 + L = 16): ignored.
	pp := &wire.PrePrepare{View: 0, Seq: 1000, NonDet: (&wire.NonDet{Time: uint64(time.Now().UnixNano())}).Marshal()}
	d.inject(0, d.sealFrom(0, wire.MTPrePrepare, pp.Marshal(), false))
	time.Sleep(50 * time.Millisecond)
	if info := d.rep.Info(); info.LastExec != 0 {
		t.Fatalf("out-of-window pre-prepare must be ignored: %+v", info)
	}
}

func TestStaleNonDetRejected(t *testing.T) {
	d := newProtocolDriver(t, 3)
	stale := wire.NonDet{Time: uint64(time.Now().Add(-time.Hour).UnixNano())}
	pp := &wire.PrePrepare{
		View:   0,
		Seq:    1,
		NonDet: stale.Marshal(),
		Entries: []wire.BatchEntry{
			{Full: true, Req: wire.Request{ClientID: 4, Timestamp: 1, Op: []byte("x")}},
		},
	}
	d.inject(0, d.sealFrom(0, wire.MTPrePrepare, pp.Marshal(), false))
	d.waitFor(func(i Info) bool { return i.Stats.RejectedNonDet == 1 }, "nondet rejection")
	if info := d.rep.Info(); info.LastExec != 0 {
		t.Fatalf("stale nondet must block execution: %+v", info)
	}
}

func TestDuplicateRequestExecutedOnce(t *testing.T) {
	// A faulty primary assigns the same client request to two sequence
	// numbers; execution-time deduplication must apply it once.
	d := newProtocolDriver(t, 3)
	pp1 := d.prepareSeq(1, "same-op") // client 4, timestamp 1
	d.commitSeq(pp1)
	d.waitFor(func(i Info) bool { return i.Stats.Executed == 1 }, "first execution")

	// Same (client, timestamp) at seq 2.
	nd := wire.NonDet{Time: uint64(time.Now().UnixNano())}
	pp2 := &wire.PrePrepare{
		View: 0, Seq: 2, NonDet: nd.Marshal(),
		Entries: []wire.BatchEntry{
			{Full: true, Req: wire.Request{ClientID: 4, Timestamp: 1, Op: []byte("same-op")}},
		},
	}
	d.inject(0, d.sealFrom(0, wire.MTPrePrepare, pp2.Marshal(), false))
	prep := wire.Prepare{View: 0, Seq: 2, Digest: pp2.BatchDigest(), Replica: 1}
	d.inject(1, d.sealFrom(1, wire.MTPrepare, prep.Marshal(), false))
	d.waitFor(func(i Info) bool { return i.LastExec == 2 }, "second batch processed")
	if info := d.rep.Info(); info.Stats.Executed != 1 {
		t.Fatalf("duplicate executed %d times, want 1", info.Stats.Executed)
	}
}

// buildViewChangeVotes signs view-change votes for the target view from
// the given peers.
func (d *protocolDriver) buildViewChangeVotes(target uint64, peers []uint32) [][]byte {
	votes := make([][]byte, 0, len(peers))
	for _, peer := range peers {
		vc := wire.ViewChange{NewView: target, LastStable: 0, Replica: peer}
		votes = append(votes, d.sealFrom(peer, wire.MTViewChange, vc.Marshal(), true))
	}
	return votes
}

func TestNewViewAccepted(t *testing.T) {
	// Replica 3 receives a well-formed new-view for view 1 (primary =
	// replica 1) supported by 2f+1 = 3 votes: it must install the view.
	d := newProtocolDriver(t, 3)
	nv := wire.NewView{View: 1, ViewChanges: d.buildViewChangeVotes(1, []uint32{0, 1, 2})}
	d.inject(1, d.sealFrom(1, wire.MTNewView, nv.Marshal(), true))
	d.waitFor(func(i Info) bool { return i.View == 1 && !i.InViewChange }, "view 1 installed")
}

func TestNewViewRejectsInsufficientVotes(t *testing.T) {
	d := newProtocolDriver(t, 3)
	nv := wire.NewView{View: 1, ViewChanges: d.buildViewChangeVotes(1, []uint32{0, 1})} // only 2f
	d.inject(1, d.sealFrom(1, wire.MTNewView, nv.Marshal(), true))
	time.Sleep(50 * time.Millisecond)
	if info := d.rep.Info(); info.View != 0 {
		t.Fatalf("new-view with 2f votes must be rejected: %+v", info)
	}
}

func TestNewViewRejectsWrongPrimary(t *testing.T) {
	d := newProtocolDriver(t, 3)
	nv := wire.NewView{View: 1, ViewChanges: d.buildViewChangeVotes(1, []uint32{0, 1, 2})}
	// Replica 2 is not the primary of view 1.
	d.inject(2, d.sealFrom(2, wire.MTNewView, nv.Marshal(), true))
	time.Sleep(50 * time.Millisecond)
	if info := d.rep.Info(); info.View != 0 {
		t.Fatalf("new-view from a non-primary must be rejected: %+v", info)
	}
}

func TestNewViewRejectsDuplicateVoters(t *testing.T) {
	d := newProtocolDriver(t, 3)
	votes := d.buildViewChangeVotes(1, []uint32{0, 1})
	votes = append(votes, votes[0]) // pad the quorum with a duplicate
	nv := wire.NewView{View: 1, ViewChanges: votes}
	d.inject(1, d.sealFrom(1, wire.MTNewView, nv.Marshal(), true))
	time.Sleep(50 * time.Millisecond)
	if info := d.rep.Info(); info.View != 0 {
		t.Fatalf("duplicate voters must not count twice: %+v", info)
	}
}

func TestNewViewRejectsForgedO(t *testing.T) {
	// The new primary smuggles a batch into O that no vote prepared:
	// the replica recomputes O from the votes and must refuse.
	d := newProtocolDriver(t, 3)
	forged := wire.PrePrepare{View: 1, Seq: 1, Entries: []wire.BatchEntry{
		{Full: true, Req: wire.Request{ClientID: 4, Timestamp: 1, Op: []byte("smuggled")}},
	}}
	nv := wire.NewView{
		View:        1,
		ViewChanges: d.buildViewChangeVotes(1, []uint32{0, 1, 2}),
		PrePrepares: []wire.PrePrepare{forged},
	}
	d.inject(1, d.sealFrom(1, wire.MTNewView, nv.Marshal(), true))
	time.Sleep(50 * time.Millisecond)
	if info := d.rep.Info(); info.View != 0 || info.LastExec != 0 {
		t.Fatalf("forged O must be rejected: %+v", info)
	}
}

func TestNewViewReproposesPreparedBatch(t *testing.T) {
	// A vote carries a prepared certificate for seq 1; the new-view's O
	// must re-propose it and the replica must re-run agreement in the
	// new view (it sends a prepare; with the old-view prepare quorum
	// voided, execution waits for the new-view certificate).
	d := newProtocolDriver(t, 3)
	nd := wire.NonDet{Time: uint64(time.Now().UnixNano())}
	orig := wire.PrePrepare{View: 0, Seq: 1, NonDet: nd.Marshal(), Entries: []wire.BatchEntry{
		{Full: true, Req: wire.Request{ClientID: 4, Timestamp: 1, Op: []byte("carried")}},
	}}
	origEnv := wire.Envelope{Type: wire.MTPrePrepare, Sender: 0, Payload: orig.Marshal()}
	votes := make([][]byte, 0, 3)
	for _, peer := range []uint32{0, 1, 2} {
		vc := wire.ViewChange{NewView: 1, LastStable: 0, Replica: peer}
		if peer != 2 {
			vc.Prepared = []wire.PreparedInfo{{Seq: 1, View: 0, Digest: orig.BatchDigest(), PPRaw: origEnv.Marshal()}}
		}
		votes = append(votes, d.sealFrom(peer, wire.MTViewChange, vc.Marshal(), true))
	}
	// Recompute O the way the primary would (exported helper under test
	// elsewhere): re-proposed with view 1.
	repro := wire.PrePrepare{View: 1, Seq: 1, NonDet: orig.NonDet, Entries: orig.Entries}
	nv := wire.NewView{View: 1, ViewChanges: votes, PrePrepares: []wire.PrePrepare{repro}}
	d.inject(1, d.sealFrom(1, wire.MTNewView, nv.Marshal(), true))
	d.waitFor(func(i Info) bool { return i.View == 1 }, "view installed")

	// Complete agreement in view 1: one more backup prepare (replica 3's
	// own prepare makes 2f), then commits.
	prep := wire.Prepare{View: 1, Seq: 1, Digest: repro.BatchDigest(), Replica: 0}
	d.inject(0, d.sealFrom(0, wire.MTPrepare, prep.Marshal(), false))
	for _, peer := range []uint32{0, 2} {
		cm := wire.Commit{View: 1, Seq: 1, Digest: repro.BatchDigest(), Replica: peer}
		d.inject(peer, d.sealFrom(peer, wire.MTCommit, cm.Marshal(), false))
	}
	d.waitFor(func(i Info) bool { return i.LastExec == 1 }, "re-proposed batch executed")
}

func TestStatusTriggersRetransmission(t *testing.T) {
	// Peer 1 reports lastExec=0 while the replica has executed seq 1;
	// the replica must retransmit its log (pre-prepare + its prepare and
	// commit) to peer 1.
	d := newProtocolDriver(t, 3)
	pp := d.prepareSeq(1, "op")
	d.commitSeq(pp)
	d.waitFor(func(i Info) bool { return i.LastExec == 1 && i.Stats.Executed == 1 }, "executed")

	st := wire.Status{View: 0, LastExec: 0, LastStable: 0, Replica: 1}
	d.inject(1, d.sealFrom(1, wire.MTStatus, st.Marshal(), false))

	deadline := time.Now().Add(2 * time.Second)
	var got []wire.MsgType
	for time.Now().Before(deadline) {
		select {
		case pkt := <-d.conns[1].Recv():
			env, err := wire.UnmarshalEnvelope(pkt.Data)
			if err != nil {
				continue
			}
			got = append(got, env.Type)
			seen := map[wire.MsgType]bool{}
			for _, ty := range got {
				seen[ty] = true
			}
			if seen[wire.MTPrePrepare] && seen[wire.MTPrepare] && seen[wire.MTCommit] {
				return
			}
		case <-time.After(100 * time.Millisecond):
		}
	}
	t.Fatalf("retransmission incomplete; saw %v", got)
}

func TestBadAuthenticationCounted(t *testing.T) {
	d := newProtocolDriver(t, 3)
	// A prepare sealed with the WRONG key (peer 2 claims to be peer 1).
	prep := wire.Prepare{View: 0, Seq: 1, Digest: crypto.DigestOf([]byte("x")), Replica: 1}
	env := &wire.Envelope{Type: wire.MTPrepare, Sender: 1, Payload: prep.Marshal()}
	keys := make([]crypto.SessionKey, len(d.cfg.Replicas))
	for i, ri := range d.cfg.Replicas {
		if i == 2 {
			continue
		}
		k, err := d.rkeys[2].SharedKey(ri.PubKey) // forger's keys
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	env.Kind = wire.AuthMAC
	env.Auth = crypto.ComputeAuthenticator(keys, env.SignedBytes())
	d.inject(2, env.Marshal())
	d.waitFor(func(i Info) bool { return i.Stats.DroppedBadAuth >= 1 }, "bad auth drop")
}
