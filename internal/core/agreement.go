package core

import (
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// stampEntries marks every request carried by a log entry's pre-prepare
// with an agreement phase, tagging the timeline with the entry's
// sequence number and view.
func (r *Replica) stampEntries(e *entry, p trace.Phase) {
	if r.rec == nil || e.pp == nil {
		return
	}
	for i := range e.pp.Entries {
		c, ts := e.pp.Entries[i].RequestID()
		r.rec.StampSeq(c, ts, p, e.seq, e.view)
	}
}

// onRequest processes an authenticated client request. raw is the
// envelope's wire form, kept for relaying to the primary unchanged (so the
// primary verifies the client's own authentication, not the relayer's).
func (r *Replica) onRequest(req *wire.Request, client *nodeEntry, raw []byte) {
	if r.rec != nil {
		r.rec.Stamp(req.ClientID, req.Timestamp, trace.LoopDispatch)
	}
	if req.ReadOnly() {
		r.execReadOnly(req, client)
		return
	}
	// Already executed? Retransmit the cached reply. Also disarm any
	// liveness timer a backup armed for an earlier relay of this
	// request: a retransmission that dedups here must not keep pushing
	// the replica toward a view change it cannot satisfy.
	if cw := r.clientWins[req.ClientID]; cw != nil && cw.executed(req.Timestamp, r.cfg.ClientWindow()) {
		delete(r.pendingSeen, reqKey{req.ClientID, req.Timestamp})
		if cached := cw.cachedReply(req.Timestamp); cached != nil {
			r.sendReply(cached, client)
		}
		return
	}
	if req.Big() {
		r.bigBodies[req.Digest()] = &bigBody{req: req}
	}
	if r.isPrimary() && !r.inViewChange {
		queued := r.primaryQueued[req.ClientID]
		if queued[req.Timestamp] {
			return // already queued or ordered
		}
		// Bounded pipeline: at most W requests per client queued at once;
		// anything beyond the window is dropped and left to the client's
		// retransmission once earlier requests execute.
		if uint64(len(queued)) >= r.cfg.ClientWindow() {
			return
		}
		if queued == nil {
			queued = make(map[uint64]bool)
			r.primaryQueued[req.ClientID] = queued
		}
		queued[req.Timestamp] = true
		r.pendingQueue = append(r.pendingQueue, req)
		if r.rec != nil {
			r.rec.Stamp(req.ClientID, req.Timestamp, trace.BatchEnqueue)
		}
		r.tryPropose()
		return
	}
	// Backup: remember the request for the liveness timer and relay the
	// client's envelope to the primary verbatim (big bodies were
	// multicast by the client already, so only the non-big path relays).
	key := reqKey{req.ClientID, req.Timestamp}
	if _, ok := r.pendingSeen[key]; !ok {
		r.pendingSeen[key] = r.now()
	}
	if !req.Big() && !r.inViewChange && raw != nil {
		_ = r.conn.Send(r.cfg.Replicas[r.cfg.Primary(r.view)].Addr, raw)
	}
}

// tryPropose lets the primary assign sequence numbers to queued requests,
// honoring the congestion window and the high watermark (§2.1).
func (r *Replica) tryPropose() {
	if !r.isPrimary() || r.inViewChange || r.sync != nil {
		return
	}
	for len(r.pendingQueue) > 0 {
		if r.seq+1 > r.lastStable+r.cfg.LogWindow() {
			return // log full until the next stable checkpoint
		}
		batch := 1
		if r.cfg.Opts.Batching {
			// Congestion window: if execution lags too far behind,
			// postpone the pre-prepare; the queue will drain into a
			// single batch once execution catches up.
			if r.seq-r.lastExec >= uint64(r.cfg.Opts.CongestionWindow) {
				return
			}
			batch = len(r.pendingQueue)
			// The batch-size bound: the adaptive controller's live
			// window (Options.AdaptiveBatching), or the static MaxBatch.
			if max := r.batchWindow(); max > 0 && batch > max {
				batch = max
			}
			// Datagram bound: inline bodies count in full, digest
			// entries are small. This caps batches of non-big
			// requests well below MaxBatch (§2.1).
			if bb := r.cfg.Opts.MaxBatchBytes; bb > 0 {
				bytes := 64
				n := 0
				for _, req := range r.pendingQueue[:batch] {
					cost := 44
					if !req.Big() {
						cost = 32 + len(req.Op)
					}
					if n > 0 && bytes+cost > bb {
						break
					}
					bytes += cost
					n++
				}
				batch = n
			}
		}
		reqs := r.pendingQueue[:batch]
		r.pendingQueue = append([]*wire.Request(nil), r.pendingQueue[batch:]...)
		r.propose(reqs)
	}
}

// propose builds, logs and broadcasts one pre-prepare.
func (r *Replica) propose(reqs []*wire.Request) {
	r.seq++
	if r.batchCtl != nil {
		// Feed the controller its occupancy signal and stamp the entry
		// so the commit certificate closes the latency sample.
		r.batchCtl.observeBatch(len(reqs))
	}
	pp := &wire.PrePrepare{
		View:   r.view,
		Seq:    r.seq,
		NonDet: ndMarshal(r.ndProvider()),
	}
	pp.Entries = make([]wire.BatchEntry, 0, len(reqs))
	for _, req := range reqs {
		if req.Big() {
			pp.Entries = append(pp.Entries, wire.BatchEntry{
				ClientID:  req.ClientID,
				Timestamp: req.Timestamp,
				Digest:    req.Digest(),
			})
		} else {
			pp.Entries = append(pp.Entries, wire.BatchEntry{Full: true, Req: *req})
		}
	}
	env := r.sealToReplicas(wire.MTPrePrepare, pp.Marshal())
	e := r.getEntry(pp.Seq)
	e.view = r.view
	e.pp = pp
	e.ppRaw = env.Raw()
	e.digest = pp.BatchDigest()
	if r.batchCtl != nil {
		e.proposedAt = r.now()
	}
	r.broadcast(env)
	r.stampEntries(e, trace.PrePrepareSent)
	r.tryPrepared(e)
	r.tryExecute()
}

// getEntry returns (creating if needed) the log entry for seq.
func (r *Replica) getEntry(seq uint64) *entry {
	e, ok := r.log[seq]
	if !ok {
		e = newEntry(seq)
		r.log[seq] = e
	}
	return e
}

// inWindow checks the sequence watermarks.
func (r *Replica) inWindow(seq uint64) bool {
	return seq > r.lastStable && seq <= r.lastStable+r.cfg.LogWindow()
}

// acceptPrePrepare validates and logs a pre-prepare (decoded and
// authenticated by the ingress pipeline). fromNewView skips the checks
// that do not apply to re-proposed assignments.
func (r *Replica) acceptPrePrepare(pp *wire.PrePrepare, env *wire.Envelope, fromNewView bool) {
	if !fromNewView {
		if r.inViewChange || pp.View != r.view || env.Sender != r.cfg.Primary(pp.View) {
			return
		}
		if !r.inWindow(pp.Seq) {
			return
		}
	}
	digest := pp.BatchDigest()
	e := r.getEntry(pp.Seq)
	if e.pp != nil && e.view == pp.View {
		if e.digest != digest {
			// Conflicting assignment from the primary: Byzantine
			// behaviour; refuse (the liveness timer will eventually
			// force a view change).
			r.stats.ConflictingPrePrepares++
			return
		}
		return // duplicate
	}
	// Validate the primary's non-deterministic choices (§2.5). A replayed
	// pre-prepare with a stale timestamp fails here — the recovery pitfall
	// the paper describes.
	if len(pp.Entries) > 0 {
		nd, err := wire.UnmarshalNonDet(pp.NonDet)
		if err != nil || !r.ndValidator(*nd) {
			r.stats.RejectedNonDet++
			return
		}
	}
	if e.pp != nil && pp.View > e.view {
		e.resetForView(pp.View, pp, env.Raw(), digest)
	} else {
		e.view = pp.View
		e.pp = pp
		e.ppRaw = env.Raw()
		e.digest = digest
	}
	// Remember full bodies so status retransmission can serve them, and
	// clear liveness timers for the assigned requests.
	for i := range pp.Entries {
		be := &pp.Entries[i]
		c, ts := be.RequestID()
		delete(r.pendingSeen, reqKey{c, ts})
		if be.Full && be.Req.Big() {
			req := be.Req
			r.bigBodies[req.Digest()] = &bigBody{req: &req}
		}
	}
	if !r.isPrimary() && !e.sentPrepare {
		e.sentPrepare = true
		prep := wire.Prepare{View: pp.View, Seq: pp.Seq, Digest: digest, Replica: r.id}
		e.prepares[r.id] = digest
		pw := wire.GetWriter(64)
		prep.Encode(pw)
		r.broadcastTransient(wire.MTPrepare, pw)
	}
	r.tryPrepared(e)
	r.tryExecute()
}

// onPrepare records a backup's prepare vote (decoded and authenticated by
// the ingress pipeline).
func (r *Replica) onPrepare(p *wire.Prepare) {
	if p.View != r.view || !r.inWindow(p.Seq) || r.inViewChange {
		return
	}
	if p.Replica == r.cfg.Primary(p.View) {
		return // the primary's pre-prepare is its prepare
	}
	e := r.getEntry(p.Seq)
	e.prepares[p.Replica] = p.Digest
	r.tryPrepared(e)
	r.tryExecute()
}

// tryPrepared checks the 2f-prepare certificate and advances to commit.
func (r *Replica) tryPrepared(e *entry) {
	if e.prepared || e.pp == nil || e.view != r.view {
		return
	}
	if e.countPrepares() < 2*r.f {
		return
	}
	e.prepared = true
	r.stampEntries(e, trace.PrepareQuorum)
	if !e.sentCommit {
		e.sentCommit = true
		c := wire.Commit{View: e.view, Seq: e.seq, Digest: e.digest, Replica: r.id}
		e.commits[r.id] = e.digest
		cw := wire.GetWriter(64)
		c.Encode(cw)
		r.broadcastTransient(wire.MTCommit, cw)
	}
	r.tryCommitted(e)
}

// onCommit records a replica's commit vote (decoded and authenticated by
// the ingress pipeline).
func (r *Replica) onCommit(c *wire.Commit) {
	if c.View != r.view || !r.inWindow(c.Seq) || r.inViewChange {
		return
	}
	e := r.getEntry(c.Seq)
	e.commits[c.Replica] = c.Digest
	r.tryPrepared(e)
	r.tryCommitted(e)
	r.tryExecute()
}

// tryCommitted checks the 2f+1-commit certificate.
func (r *Replica) tryCommitted(e *entry) {
	if e.committed || !e.prepared {
		return
	}
	if e.countCommits() < r.quorum {
		return
	}
	e.committed = true
	r.stampEntries(e, trace.CommitQuorum)
	if r.batchCtl != nil && !e.proposedAt.IsZero() {
		// Close the controller's commit-latency sample for a batch this
		// replica proposed.
		r.batchCtl.observeCommit(r.now().Sub(e.proposedAt))
		e.proposedAt = time.Time{}
	}
	if r.tracer != nil {
		r.tracer.OnCommit(CommitEvent{Replica: r.id, View: e.view, Seq: e.seq})
	}
	// A commit upgrades tentatively executed replies to stable.
	if e.executed {
		for _, rep := range e.replies {
			rep.Flags &^= wire.FlagTentative
		}
		r.advanceCommittedContig()
	}
}

// advanceCommittedContig moves the committed-and-executed frontier.
func (r *Replica) advanceCommittedContig() {
	for {
		e := r.log[r.committedContig+1]
		if e == nil || !e.committed || !e.executed {
			return
		}
		r.committedContig++
	}
}
