package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/crypto"
	"repro/internal/exec"
	"repro/internal/state"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrStopped is returned by Run after the replica has been shut down:
// a replica's lifecycle is one-shot (New -> Running -> Stopped) and a
// stopped replica cannot be restarted — build a fresh one.
var ErrStopped = errors.New("core: replica stopped")

// ErrRunning is returned by Run when the replica is already running.
var ErrRunning = errors.New("core: replica already running")

// lifecycle states. Transitions: lcNew -> lcRunning -> lcStopped, or
// lcNew -> lcStopped (Shutdown before Run).
const (
	lcNew = iota
	lcRunning
	lcStopped
)

// Replica is one member of the PBFT group. All protocol state is confined
// to the event-loop goroutine started by Start; external access goes
// through Inspect. Inbound packets reach the loop through the ingress
// verification pipeline (see ingress.go), which authenticates and decodes
// them in parallel while preserving arrival order.
type Replica struct {
	id     uint32
	cfg    *Config
	kp     *crypto.KeyPair
	conn   transport.Conn
	app    Application
	region *state.Region

	n, f, quorum int
	replicaKeys  []crypto.SessionKey
	peerAddrs    []string // every other replica, for egress fan-out
	ingress      *ingress

	// Sharded execution engine (exec.Engine): applies committed
	// operations behind the commit stream, concurrently when the
	// application's Sharder declares them non-conflicting. reaper (nil
	// with Options.AsyncReap off) overlaps agreement with execution by
	// reaping completed applies off the loop.
	exec    *exec.Engine
	sharder Sharder
	reaper  *reaper

	// batchCtl is the adaptive batch-sizing controller (nil with
	// Options.AdaptiveBatching off).
	batchCtl *batchController

	// Protocol state owned by the run goroutine.
	view            uint64
	seq             uint64 // last assigned sequence number (as primary)
	lastExec        uint64
	committedContig uint64
	lastStable      uint64
	log             map[uint64]*entry
	nodes           *nodeTable
	bigBodies       map[crypto.Digest]*bigBody
	clientWins      map[uint32]*clientWindow
	pendingQueue    []*wire.Request
	primaryQueued   map[uint32]map[uint64]bool
	pendingSeen     map[reqKey]time.Time
	applyQueue      []*pendingApply // submitted to the engine, not yet reaped
	executing       bool            // tryExecute reentrancy guard

	ckpts        map[uint64]*ckptRecord
	stableProof  [][]byte
	foreign      map[foreignKey]map[uint32][]byte
	remoteStable *ckptRecord

	pendingJoins    map[string]*pendingJoin // keyed by hex pubkey digest
	primaryJoinSeen map[string]bool
	joinReplies     map[string]*joinReply
	idSeed          uint64

	inViewChange bool
	vcTarget     uint64
	viewChanges  map[uint64]map[uint32]*vcRecord
	newViewRaw   []byte
	vcDeadline   time.Time

	sync *syncState

	ndProvider  func() wire.NonDet
	ndValidator func(nd wire.NonDet) bool

	lastStatus time.Time
	now        func() time.Time

	ctl    chan func()
	stopCh chan struct{}
	doneCh chan struct{}

	// Lifecycle state (see Run/Shutdown). lcMu guards lcState; stopOnce
	// makes the stop signal idempotent across Shutdown, context
	// cancellation and the deprecated Stop.
	lcMu     sync.Mutex
	lcState  int
	stopOnce sync.Once

	// tracer receives typed protocol events; nil disables tracing (the
	// hot loop pays one nil check per event site).
	tracer Tracer

	// rec is the per-request flight recorder; nil disables phase
	// stamping (one nil check per stamp site, no allocations).
	rec *trace.Recorder

	// durable owns the replica's on-disk state (Options.DataDir); nil
	// keeps the replica diskless at the cost of one nil check on the
	// stable-checkpoint path.
	durable *durableStore

	stats Stats
}

// Stats counts replica-side protocol events; the harness reads them
// through Inspect.
type Stats struct {
	Executed       uint64 // requests executed (excluding read-only)
	ReadOnlyExec   uint64
	Batches        uint64 // pre-prepares executed
	Checkpoints    uint64
	StableCkpts    uint64
	ViewChanges    uint64
	StateTransfers uint64
	PagesFetched   uint64
	// ExecSharded counts operations the execution engine ran on a
	// single shard (the concurrent path); ExecBarriers counts
	// operations that rendezvoused every shard (unkeyed or multi-shard
	// keysets, drains, membership operations).
	ExecSharded  uint64
	ExecBarriers uint64
	// DroppedBadAuth counts packets rejected for failed authentication,
	// whether by the ingress verifier pool or by the protocol loop.
	DroppedBadAuth uint64
	// DroppedMalformed counts packets rejected for failed structural
	// decoding (garbage framing, truncated envelopes) before any
	// authentication verdict applied.
	DroppedMalformed uint64
	// DroppedIgnored counts packets silently discarded by ingress as
	// stale, misdirected, or malformed-but-authenticated.
	DroppedIgnored uint64
	// ConflictingPrePrepares counts pre-prepares rejected because a
	// different digest was already accepted for the same view and
	// sequence — the signature of an equivocating primary.
	ConflictingPrePrepares uint64
	// DroppedForgedJoins counts join requests rejected because the
	// envelope signature did not verify against the credential it
	// presented — a fabricated join identity.
	DroppedForgedJoins uint64
	RejectedNonDet     uint64
	WedgedNow          bool
	SyncingNow         bool
	JoinsExecuted      uint64
	LeavesExecuted     uint64
	SessionsEvicted    uint64
	// Durable-replica counters, all zero while DataDir is unset.
	// DurableNow reports that this replica runs with a data directory;
	// Restarts counts recoveries from an existing manifest (0 on first
	// boot); RecoveryNanos is the duration of the last disk recovery;
	// WALFsyncs/WALBytes/WALCheckpoints mirror the WAL-backed VFS
	// counters; PersistErrors counts failed stable-checkpoint persists
	// (after which the store latches broken and the replica continues
	// in-memory).
	DurableNow     bool
	Restarts       uint64
	RecoveryNanos  uint64
	WALFsyncs      uint64
	WALBytes       uint64
	WALCheckpoints uint64
	PersistErrors  uint64
}

// ckptRecord tracks one checkpoint: the local snapshot (if this replica
// produced it) and the signed votes collected from the group.
type ckptRecord struct {
	seq        uint64
	digest     crypto.Digest // composite
	root       crypto.Digest
	metaDigest crypto.Digest
	meta       []byte
	snap       *state.Snapshot
	votes      map[uint32][]byte // replica -> raw signed checkpoint envelope
	mine       bool
	stable     bool
}

// vcRecord stores one received view-change vote.
type vcRecord struct {
	vc  *wire.ViewChange
	raw []byte
}

// pendingJoin is phase-1 join state awaiting the challenge response; it is
// part of the replicated metadata.
type pendingJoin struct {
	addr      string
	pubRaw    []byte
	pub       crypto.PublicKey
	nonce     uint64
	appAuth   []byte
	challenge crypto.Digest
	ts        uint64
}

// NewReplica builds a replica. The connection is owned by the replica
// after this call; Stop closes it.
func NewReplica(cfg *Config, id uint32, kp *crypto.KeyPair, conn transport.Conn, app Application) (*Replica, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if int(id) >= cfg.N() {
		return nil, fmt.Errorf("core: replica id %d out of range [0,%d)", id, cfg.N())
	}
	region, err := state.NewRegion(cfg.Opts.StateSize, cfg.Opts.PageSize)
	if err != nil {
		return nil, err
	}
	// Durable recovery stage A (Options.DataDir): recover the pages file
	// through its WAL, load the manifest and rebuild the page image
	// before the application attaches. Validation failures (no or
	// corrupt manifest, image not reproducing the manifest root) reset
	// the store — the replica boots fresh and re-fetches over state
	// transfer instead of serving from suspect disk state.
	var durable *durableStore
	var recoverStart time.Time
	if cfg.Opts.DataDir != "" {
		recoverStart = time.Now()
		durable, err = openDurable(cfg.Opts.DataDir)
		if err != nil {
			return nil, err
		}
		if durable.man == nil {
			// No validated manifest: any page content on disk is
			// unverifiable (e.g. a crash before the first manifest ever
			// landed). Discard it without applying it to the region.
			if err := durable.reset(); err != nil {
				durable.close()
				return nil, err
			}
		} else if restoreErr := durable.restoreRegion(region); restoreErr != nil {
			if err := durable.reset(); err != nil {
				durable.close()
				return nil, err
			}
			// The image may be part-applied: rebuild the region so the
			// replica boots on genuinely clean genesis state.
			region, err = state.NewRegion(cfg.Opts.StateSize, cfg.Opts.PageSize)
			if err != nil {
				durable.close()
				return nil, err
			}
		}
		durable.seedLeaves(region)
	}
	if su, ok := app.(StateUser); ok {
		su.AttachState(region)
	}
	r := &Replica{
		id:            id,
		cfg:           cfg,
		kp:            kp,
		conn:          conn,
		app:           app,
		region:        region,
		n:             cfg.N(),
		f:             cfg.Opts.F,
		quorum:        cfg.Quorum(),
		log:           make(map[uint64]*entry),
		nodes:         newNodeTable(cfg.Opts.MaxNodes),
		bigBodies:     make(map[crypto.Digest]*bigBody),
		clientWins:    make(map[uint32]*clientWindow),
		primaryQueued: make(map[uint32]map[uint64]bool),
		pendingSeen:   make(map[reqKey]time.Time),
		ckpts:         make(map[uint64]*ckptRecord),
		pendingJoins:  make(map[string]*pendingJoin),
		viewChanges:   make(map[uint64]map[uint32]*vcRecord),
		now:           time.Now,
		ctl:           make(chan func()),
		stopCh:        make(chan struct{}),
		doneCh:        make(chan struct{}),
		tracer:        cfg.Opts.Tracer,
		rec:           cfg.Opts.Recorder,
	}
	r.ndProvider = r.defaultNonDetProvider
	r.ndValidator = r.defaultNonDetValidator
	if cfg.Opts.AdaptiveBatching && cfg.Opts.Batching {
		r.batchCtl = newBatchController(cfg.Opts.MaxBatch)
	}
	if cfg.Opts.AsyncReap {
		r.reaper = newReaper(r)
	}

	// Pairwise replica MAC keys are derived from the static identities.
	r.replicaKeys = make([]crypto.SessionKey, r.n)
	replicaPubs := make([]crypto.PublicKey, r.n)
	for i, ri := range cfg.Replicas {
		replicaPubs[i] = ri.PubKey
		if uint32(i) != id {
			r.peerAddrs = append(r.peerAddrs, ri.Addr)
		}
		if uint32(i) == id {
			// The self entry of an authenticator is never verified, but
			// it is computed on every seal: give it real (pooled) key
			// material so it amortizes like the others.
			r.replicaKeys[i] = crypto.NewSessionKey(crypto.MarshalPublicKey(ri.PubKey))
			continue
		}
		k, err := kp.SharedKey(ri.PubKey)
		if err != nil {
			return nil, fmt.Errorf("derive replica key %d: %w", i, err)
		}
		r.replicaKeys[i] = k
	}
	r.ingress = newIngress(id, r.n, kp, r.replicaKeys, replicaPubs, cfg.Opts.verifyWorkers())
	r.ingress.rec = r.rec
	if sh, ok := app.(Sharder); ok {
		r.sharder = sh
	}
	shards := cfg.Opts.execShards()
	if r.sharder == nil {
		// Without a Sharder every operation would be an all-shard
		// barrier: same schedule as serial, minus the serial engine's
		// inline fast path. Clamp.
		shards = 1
	}
	r.exec = exec.New(shards)
	if so, ok := app.(ShardObserver); ok {
		so.ObserveExecShards(shards)
	}

	// Seed the node table: replicas and (static membership) clients.
	for _, ri := range cfg.Replicas {
		r.nodes.add(&nodeEntry{ID: ri.ID, Addr: ri.Addr, Pub: ri.PubKey})
	}
	for _, ci := range cfg.Clients {
		ci := ci
		r.nodes.add(&nodeEntry{ID: ci.ID, Addr: ci.Addr, Pub: ci.PubKey})
	}
	r.syncClientAuth()

	// The genesis checkpoint at sequence 0 anchors rollback and sync.
	r.recordLocalCheckpoint(0)
	r.ckpts[0].stable = true

	// Durable recovery stage B: rejoin at the persisted stable
	// checkpoint — metadata (dedup windows, dynamic membership, pending
	// joins), view number, and the checkpoint record with its 2f+1
	// proof. The state transfer needed afterwards is the delta only.
	if durable != nil {
		r.durable = durable
		if durable.man != nil {
			if err := r.recoverFromManifest(durable.man); err != nil {
				durable.close()
				return nil, err
			}
		}
		durable.recoveryNanos = uint64(time.Since(recoverStart))
	}
	return r, nil
}

// Run starts the replica — ingress pipeline plus event loop — and blocks
// until it stops: Shutdown is called, the context is cancelled, or the
// connection closes underneath it. It returns nil after a Shutdown-
// or connection-driven stop and ctx.Err() after a context-driven one.
//
// The lifecycle is one-shot: Run on a running replica returns ErrRunning,
// Run after Shutdown (or after a previous Run finished) returns
// ErrStopped. To run in the background, `go r.Run(ctx)` — or use the
// deprecated Start wrapper.
func (r *Replica) Run(ctx context.Context) error {
	if err := r.beginRun(); err != nil {
		return err
	}
	return r.runLifecycle(ctx)
}

// beginRun performs the New -> Running transition.
func (r *Replica) beginRun() error {
	r.lcMu.Lock()
	defer r.lcMu.Unlock()
	switch r.lcState {
	case lcRunning:
		return ErrRunning
	case lcStopped:
		return ErrStopped
	}
	r.lcState = lcRunning
	return nil
}

// runLifecycle owns a running replica from ingress start to teardown.
// The Running -> Stopped transition happens inside run(), before doneCh
// releases Shutdown waiters, so a caller returning from Shutdown always
// observes the stopped state (Run -> ErrStopped, Running() -> false).
func (r *Replica) runLifecycle(ctx context.Context) error {
	r.ingress.start(r.conn.Recv())
	if ctx != nil && ctx.Done() != nil {
		defer context.AfterFunc(ctx, r.signalStop)()
	}
	r.run()
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

// signalStop requests the event loop to wind down (idempotent).
func (r *Replica) signalStop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
}

// Shutdown stops the replica gracefully: the event loop finishes its
// current transition, drains the already-verified ingress backlog
// (committed requests that reached the replica still execute and their
// replies are flushed), reaps the execution engine — detached reads
// included — and only then closes the connection. The context bounds how
// long Shutdown waits for that to complete; on expiry the teardown keeps
// running in the background and ctx.Err() is returned.
//
// Shutdown is idempotent and safe in every lifecycle state: calling it
// twice, concurrently, or before Run all work; after the first completed
// Shutdown the replica is permanently stopped (Run returns ErrStopped).
func (r *Replica) Shutdown(ctx context.Context) error {
	r.lcMu.Lock()
	if r.lcState == lcNew {
		// Never ran: there is no loop to wind down, but NewReplica
		// already spawned the execution engine and owns the connection —
		// release both so a replica that is built and discarded leaks
		// nothing.
		r.lcState = lcStopped
		r.signalStop()
		r.exec.Stop()
		if r.durable != nil {
			r.durable.close()
		}
		_ = r.conn.Close()
		close(r.doneCh)
		r.lcMu.Unlock()
		return nil
	}
	r.lcMu.Unlock()
	r.signalStop()
	select {
	case <-r.doneCh:
		return nil
	case <-ctxDone(ctx):
		return ctx.Err()
	}
}

// ctxDone tolerates nil contexts (Shutdown(nil) waits indefinitely,
// like Shutdown(context.Background())).
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// Start launches the replica in the background.
//
// Deprecated: use Run, which reports lifecycle errors and supports
// context cancellation. Start is a thin wrapper that discards both.
func (r *Replica) Start() {
	if err := r.beginRun(); err != nil {
		return
	}
	go r.runLifecycle(context.Background())
}

// Stop terminates the replica and closes the connection.
//
// Deprecated: use Shutdown, which bounds the wait with a context. Stop
// waits for the full graceful teardown.
func (r *Replica) Stop() {
	_ = r.Shutdown(context.Background())
}

// ID returns the replica identifier.
func (r *Replica) ID() uint32 { return r.id }

// Running reports whether the event loop is live (between Run and the
// completion of Shutdown). Health endpoints use it: a stopped replica
// still answers Info from its quiescent state, but is not serving.
func (r *Replica) Running() bool {
	r.lcMu.Lock()
	defer r.lcMu.Unlock()
	return r.lcState == lcRunning
}

// Info is a point-in-time snapshot of replica progress for tests and the
// harness.
type Info struct {
	View         uint64
	LastExec     uint64
	LastStable   uint64
	InViewChange bool
	// StableDigest is the composite state digest of the last stable
	// checkpoint (the agreed region root + metadata digest). Replicas
	// at the same LastStable must report the same value — the
	// determinism suite's cross-replica assertion.
	StableDigest [32]byte
	// ExecQueueDepth is the number of operations submitted to the
	// execution engine and not yet finished (ordered applies plus
	// detached reads) — the backlog behind the commit point.
	ExecQueueDepth int
	// IngressBacklog is the number of packets verified (or being
	// verified) by the ingress pipeline and not yet consumed by the
	// protocol loop — the backlog in front of it.
	IngressBacklog int
	// BatchWindow is the batch-size bound in force for the next
	// pre-prepare: the adaptive controller's live window with
	// Options.AdaptiveBatching, the static MaxBatch otherwise.
	BatchWindow int
	// ClientSessions is the number of clients currently holding live MAC
	// session keys, bounded by Options.MaxClientSessions.
	ClientSessions int
	Stats          Stats
}

// Inspect runs fn inside the event loop, giving it safe access to the
// replica's state via the provided Info.
func (r *Replica) Inspect(fn func(Info)) {
	done := make(chan struct{})
	select {
	case r.ctl <- func() {
		fn(r.info())
		close(done)
	}:
		<-done
	case <-r.doneCh:
		fn(r.info()) // loop stopped; state is quiescent
	}
}

// Info returns a snapshot of replica progress.
func (r *Replica) Info() Info {
	var out Info
	r.Inspect(func(i Info) { out = i })
	return out
}

func (r *Replica) info() Info {
	st := r.stats
	st.DroppedBadAuth += r.ingress.droppedBadAuth.Load()
	st.DroppedMalformed += r.ingress.droppedMalformed.Load()
	st.DroppedIgnored += r.ingress.droppedIgnored.Load()
	est := r.exec.Stats()
	st.ExecSharded = est.Sharded
	st.ExecBarriers = est.Barriers
	st.WedgedNow = r.wedged()
	st.SyncingNow = r.sync != nil
	if d := r.durable; d != nil {
		st.DurableNow = true
		st.Restarts = d.restarts
		st.RecoveryNanos = d.recoveryNanos
		st.PersistErrors = d.persistErrors
		ws := d.vfs.Stats()
		st.WALFsyncs = ws.Fsyncs
		st.WALBytes = ws.Bytes
		st.WALCheckpoints = ws.Checkpoints
	}
	info := Info{
		View:           r.view,
		LastExec:       r.lastExec,
		LastStable:     r.lastStable,
		InViewChange:   r.inViewChange,
		ExecQueueDepth: r.exec.QueueDepth(),
		IngressBacklog: r.ingress.backlog(),
		BatchWindow:    r.batchWindow(),
		ClientSessions: r.nodes.sessionCount(),
		Stats:          st,
	}
	if ck := r.ckpts[r.lastStable]; ck != nil {
		info.StableDigest = ck.digest
	}
	return info
}

func (r *Replica) wedged() bool {
	e := r.log[r.lastExec+1]
	return e != nil && e.missingBody
}

// FlightDump snapshots the replica's per-request flight recorder: the
// last completed request timelines, retained slow requests and protocol
// events (see internal/trace). It returns the zero Dump when no
// recorder is installed. Safe to call from any goroutine, in any
// lifecycle state, concurrently with the protocol loop — unlike
// Inspect it never enters the loop.
func (r *Replica) FlightDump() trace.Dump {
	if r.rec == nil {
		return trace.Dump{Replica: r.id}
	}
	return r.rec.Dump()
}

// recEvent records a protocol event into the flight recorder (nil-safe).
func (r *Replica) recEvent(kind trace.EventKind, view, seq uint64) {
	if r.rec != nil {
		r.rec.RecordEvent(kind, view, seq)
	}
}

// SetClock injects a clock for tests. Must be called before Start.
func (r *Replica) SetClock(now func() time.Time) { r.now = now }

// SetNonDet overrides the non-determinism upcalls (§2.5). Must be called
// before Start. A nil provider or validator keeps the default.
func (r *Replica) SetNonDet(provider func() wire.NonDet, validator func(wire.NonDet) bool) {
	if provider != nil {
		r.ndProvider = provider
	}
	if validator != nil {
		r.ndValidator = validator
	}
}

// run is the event loop: one goroutine owns every piece of protocol state.
// It consumes pre-verified, typed messages from the ingress pipeline.
// Teardown order (the deferred calls run in reverse registration order):
// the execution engine stops first — draining in-flight applies and
// detached reads, whose replies are still sent over the open connection —
// then the connection closes, the ingress pipeline winds down, and doneCh
// releases Shutdown waiters.
func (r *Replica) run() {
	defer close(r.doneCh)
	defer func() { // before doneCh: Shutdown returnees see Stopped
		r.lcMu.Lock()
		r.lcState = lcStopped
		r.lcMu.Unlock()
	}()
	defer func() { // after the loop: nothing persists anymore
		if r.durable != nil {
			r.durable.close()
		}
	}()
	defer r.ingress.stop()
	defer r.conn.Close()
	defer r.exec.Stop() // drain in-flight applies and detached reads
	// The reaper stops first (LIFO): the engine keeps executing its
	// queued tasks until exec.Stop, so every span the reaper still holds
	// completes and is sent before the connection closes.
	var reapNotify chan struct{}
	if r.reaper != nil {
		r.reaper.start()
		defer r.reaper.stop()
		reapNotify = r.reaper.notify
	}
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-r.stopCh:
			r.drainForShutdown()
			return
		case fn := <-r.ctl:
			fn()
		case m, ok := <-r.ingress.out:
			if !ok {
				return
			}
			r.handleVerified(m)
			putInMsg(m)
		case <-reapNotify:
			// Spans the reaper finished between protocol events:
			// integrate them (reply cache, stats) on the loop.
			r.collectReaped()
		case <-tick.C:
			r.onTick()
		}
	}
}

// drainForShutdown is the graceful half of Shutdown: before the
// connection closes, process every message the ingress pipeline already
// admitted, so requests the group committed while this replica's loop
// was busy still execute and their replies are flushed. beginSettle
// stops the intake first — the drain handles a finite backlog (what was
// inside the pipeline at the stop signal), not a live flood — and the
// reply path stays open (handleVerified sends replies through
// tryExecute/reapApplies on the still-open connection). Consuming out
// until it closes is what lets the settling pipeline finish: a worker or
// forwarder may be parked mid-delivery on a full channel.
func (r *Replica) drainForShutdown() {
	r.ingress.beginSettle()
	for m := range r.ingress.out {
		r.handleVerified(m)
		putInMsg(m)
	}
	// Flush any replies still parked in the engine before the deferred
	// teardown closes the connection.
	r.reapApplies()
}

// handleVerified dispatches one authenticated message from the ingress
// pipeline to its protocol handler. All cryptography already happened in
// the verifier pool; what remains is stateful validation and the protocol
// transitions themselves.
//
// Message types whose decoded forms are full copies — requests (relayed
// synchronously, the decoded Op is a copy), prepares, commits, status
// gossip, session hellos, and state-transfer traffic (fetches answer
// immediately; node children and page data are decoded copies) — hand
// their receive buffer back to the transport pool after the handler
// returns. Types whose raw form is retained (pre-prepares in the log,
// checkpoint and view-change votes as proofs, join state) keep theirs
// for the garbage collector. The caller recycles the message slot itself
// (putInMsg) after this returns; no handler retains any part of it.
func (r *Replica) handleVerified(m *inMsg) {
	env := &m.env
	switch env.Type {
	case wire.MTRequest:
		if m.req.System() && env.Sender == JoinSender {
			if !r.cfg.Opts.DynamicClients {
				return
			}
			r.onJoinRequest(env, m.req)
			return
		}
		client := r.nodes.get(env.Sender)
		if client == nil {
			// Authenticated against a session the protocol loop has
			// since evicted; treat like any other failed auth.
			r.stats.DroppedBadAuth++
			m.releaseRaw()
			return
		}
		if m.authPending {
			// The worker failed to authenticate. If the auth view has
			// not moved since, that verdict stands (re-verification
			// would return the same answer — this is what keeps forged
			// floods off the loop); otherwise re-verify at processing
			// time, which is where a racing session install or join has
			// been applied by now.
			if r.ingress.clients.generation() == m.authGen || !r.reverifyClient(env, client) {
				r.stats.DroppedBadAuth++
				m.releaseRaw()
				return
			}
		} else if !pubKeyEqual(client.Pub, m.verifiedPub) && !r.reverifyClient(env, client) {
			// The id was vacated and reassigned while the packet was in
			// the pipeline: the worker's verification vouched for a
			// different principal.
			r.stats.DroppedBadAuth++
			m.releaseRaw()
			return
		}
		r.onRequest(m.req, client, m.raw)
		m.releaseRaw()
	case wire.MTPrePrepare:
		r.acceptPrePrepare(m.pp, env, false)
	case wire.MTPrepare:
		r.onPrepare(m.prep)
		m.releaseRaw()
	case wire.MTCommit:
		r.onCommit(m.cmt)
		m.releaseRaw()
	case wire.MTCheckpoint:
		r.onCheckpoint(m.ckpt, m.raw)
	case wire.MTViewChange:
		r.onViewChange(env, m.raw)
	case wire.MTNewView:
		r.onNewView(env, m.raw)
	case wire.MTSessionHello:
		r.onSessionHello(m)
		m.releaseRaw()
	case wire.MTStatus:
		r.onStatus(m.status)
		m.releaseRaw()
	case wire.MTFetch:
		r.onFetch(env)
		m.releaseRaw()
	case wire.MTStateNode:
		r.onStateNode(env)
		m.releaseRaw()
	case wire.MTStatePage:
		r.onStatePage(env)
		m.releaseRaw()
	}
}

// onTick drives timers: status gossip, view-change timeouts, sync
// re-requests and primary queue flushing.
func (r *Replica) onTick() {
	now := r.now()
	if now.Sub(r.lastStatus) >= r.cfg.Opts.StatusInterval {
		r.lastStatus = now
		r.broadcastStatus()
	}
	r.checkLiveness(now)
	r.resendSync(now)
	r.maybeRecoverFromLag()
	if r.isPrimary() && !r.inViewChange {
		r.tryPropose()
	}
}

func (r *Replica) isPrimary() bool {
	return r.cfg.Primary(r.view) == r.id
}

// broadcast is the egress fan-out: seal once, marshal once, ship the same
// byte slice to every other replica through the transport's native
// broadcast path.
func (r *Replica) broadcast(env *wire.Envelope) {
	_ = transport.Broadcast(r.conn, r.peerAddrs, env.Raw())
}

// broadcastTransient seals and broadcasts a message whose bytes nothing
// retains (agreement votes, status gossip), then returns both the payload
// writer and the sealed wire form to the buffer arena: the transports
// consume the bytes before Broadcast returns, so the buffers are free the
// moment it does.
func (r *Replica) broadcastTransient(t wire.MsgType, pw *wire.Writer) {
	env := r.sealToReplicas(t, pw.Bytes())
	r.broadcast(env)
	env.ReleaseRaw()
	pw.Free()
}

// sendToReplica sends an envelope to one replica.
func (r *Replica) sendToReplica(id uint32, env *wire.Envelope) {
	if int(id) >= r.n || id == r.id {
		return
	}
	_ = r.conn.Send(r.cfg.Replicas[id].Addr, env.Raw())
}

// sendToAddr sends an envelope to an arbitrary address (clients).
func (r *Replica) sendToAddr(addr string, env *wire.Envelope) {
	_ = r.conn.Send(addr, env.Raw())
}

// broadcastStatus gossips progress so lagging peers get retransmissions.
func (r *Replica) broadcastStatus() {
	st := wire.Status{
		View:       r.view,
		LastExec:   r.lastExec,
		LastStable: r.lastStable,
		Replica:    r.id,
	}
	sw := wire.GetWriter(64)
	st.Encode(sw)
	r.broadcastTransient(wire.MTStatus, sw)
}
