// Quickstart: a 4-replica PBFT cluster (f = 1) and one client, all in
// this process over the in-memory network. The replicated service is a
// ten-line echo application.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/pbft"
)

// echoApp is the smallest possible Application: it returns the operation
// it was asked to execute. Null-ish operations like this are what most
// BFT papers benchmark (§4.1 of the paper).
type echoApp struct{}

func (echoApp) Execute(op []byte, nd pbft.NonDetValues, readOnly bool) []byte {
	return append([]byte("echo: "), op...)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const f = 1
	n := 3*f + 1

	// Every node needs key material and a network endpoint.
	net := pbft.NewNetwork(1)
	defer net.Close()

	opts := pbft.DefaultOptions()
	cfg := &pbft.Config{Opts: opts}

	replicaKeys := make([]*pbft.KeyPair, n)
	for i := 0; i < n; i++ {
		kp, err := pbft.GenerateKeyPair(nil)
		if err != nil {
			return err
		}
		replicaKeys[i] = kp
		cfg.Replicas = append(cfg.Replicas, pbft.NodeInfo{
			ID:     uint32(i),
			Addr:   fmt.Sprintf("replica-%d", i),
			PubKey: kp.Public(),
		})
	}
	clientKey, err := pbft.GenerateKeyPair(nil)
	if err != nil {
		return err
	}
	cfg.Clients = append(cfg.Clients, pbft.NodeInfo{
		ID:     uint32(n),
		Addr:   "client-0",
		PubKey: clientKey.Public(),
	})

	// Start the replicas.
	replicas := make([]*pbft.Replica, n)
	for i := 0; i < n; i++ {
		conn, err := net.Listen(cfg.Replicas[i].Addr)
		if err != nil {
			return err
		}
		rep, err := pbft.NewReplica(cfg, uint32(i), replicaKeys[i], conn, echoApp{})
		if err != nil {
			return err
		}
		rep.Start()
		replicas[i] = rep
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	// Invoke operations: each one runs the full three-phase agreement
	// across the four replicas before the client accepts the reply
	// quorum (Figure 1 of the paper).
	conn, err := net.Listen("client-0")
	if err != nil {
		return err
	}
	cl, err := pbft.NewClient(cfg, uint32(n), clientKey, conn)
	if err != nil {
		return err
	}
	defer cl.Close()

	for _, msg := range []string{"hello", "byzantine", "world"} {
		resp, err := cl.Invoke([]byte(msg))
		if err != nil {
			return err
		}
		fmt.Printf("invoke(%q) -> %q\n", msg, resp)
	}

	for i, r := range replicas {
		info := r.Info()
		fmt.Printf("replica %d: view=%d executed=%d\n", i, info.View, info.Stats.Executed)
	}
	return nil
}
