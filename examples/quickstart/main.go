// Quickstart: a 4-replica PBFT cluster (f = 1) and one client, all in
// this process over the in-memory network. The replicated service is a
// ten-line echo application.
//
// Both halves of the API are context-aware. Replicas run under the node
// runtime lifecycle: Run(ctx) blocks until Shutdown(ctx) drains the
// replica gracefully (in-flight committed requests still get replies),
// and an Options.Tracer observes typed protocol events — here a
// metrics registry that aggregates them. Clients are asynchronous:
// Submit returns a *pbft.Call future, Invoke is its synchronous
// wrapper, and one client safely serves many goroutines at once,
// pipelining up to pbft.WithPipelineDepth requests. This program shows
// all of it: Run/Shutdown, a metrics tracer, a plain Invoke, a batch of
// futures, and concurrent goroutines sharing the client.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"repro/pbft"
	"repro/pbft/metrics"
)

// echoApp is the smallest possible Application: it returns the operation
// it was asked to execute. Null-ish operations like this are what most
// BFT papers benchmark (§4.1 of the paper).
type echoApp struct{}

func (echoApp) Execute(op []byte, nd pbft.NonDetValues, readOnly bool) []byte {
	return append([]byte("echo: "), op...)
}

func main() {
	if err := run(); err != nil {
		slog.Error("quickstart failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	const f = 1
	n := 3*f + 1
	ctx := context.Background()

	// Every node needs key material and a network endpoint.
	net := pbft.NewNetwork(1)
	defer net.Close()

	opts := pbft.DefaultOptions()
	cfg := &pbft.Config{Opts: opts}

	replicaKeys := make([]*pbft.KeyPair, n)
	for i := 0; i < n; i++ {
		kp, err := pbft.GenerateKeyPair(nil)
		if err != nil {
			return err
		}
		replicaKeys[i] = kp
		cfg.Replicas = append(cfg.Replicas, pbft.NodeInfo{
			ID:     uint32(i),
			Addr:   fmt.Sprintf("replica-%d", i),
			PubKey: kp.Public(),
		})
	}
	clientKey, err := pbft.GenerateKeyPair(nil)
	if err != nil {
		return err
	}
	cfg.Clients = append(cfg.Clients, pbft.NodeInfo{
		ID:     uint32(n),
		Addr:   "client-0",
		PubKey: clientKey.Public(),
	})

	// One metrics registry aggregates the protocol events of all four
	// replicas (its tracer hooks are safe for concurrent use).
	reg := metrics.New()
	cfg.Opts = cfg.Opts.WithTracer(reg)

	// A flight recorder on replica 0 stamps every request's lifecycle
	// phases (ingress → agreement quorums → execution → reply), keeps
	// the last N timelines, and feeds per-phase durations into the
	// registry. pbft-server serves the same dump at /debug/flight.
	rec := pbft.NewFlightRecorder(pbft.FlightRecorderConfig{Replica: 0, Sink: reg})
	reg.AddFlight(0, rec.Dump)

	// Start the replicas under the node runtime: Run(ctx) blocks until
	// the context ends or Shutdown is called, so each replica gets a
	// goroutine here.
	replicas := make([]*pbft.Replica, n)
	for i := 0; i < n; i++ {
		conn, err := net.Listen(cfg.Replicas[i].Addr)
		if err != nil {
			return err
		}
		rcfg := cfg
		if i == 0 {
			recCfg := *cfg
			recCfg.Opts = recCfg.Opts.WithRecorder(rec)
			rcfg = &recCfg
		}
		rep, err := pbft.NewReplica(rcfg, uint32(i), replicaKeys[i], conn, echoApp{})
		if err != nil {
			return err
		}
		reg.AddReplica(uint32(i), rep.Info)
		go func() {
			if err := rep.Run(ctx); err != nil {
				slog.Error("replica stopped unexpectedly", "replica", rep.ID(), "err", err)
			}
		}()
		replicas[i] = rep
	}
	defer func() {
		// Graceful, bounded teardown: drain ingress, reap the execution
		// engine, flush pending replies, then close.
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, r := range replicas {
			if err := r.Shutdown(sctx); err != nil {
				slog.Error("graceful shutdown failed", "replica", r.ID(), "err", err)
			}
		}
	}()

	// One client, pipelining up to 8 requests. The connection is owned
	// by the client afterwards; Close releases it.
	conn, err := net.Listen("client-0")
	if err != nil {
		return err
	}
	cl, err := pbft.NewClient(cfg, uint32(n), clientKey, conn, pbft.WithPipelineDepth(8))
	if err != nil {
		return err
	}
	defer cl.Close()

	// Synchronous: each Invoke runs the full three-phase agreement
	// across the four replicas before the reply quorum is accepted
	// (Figure 1 of the paper).
	resp, err := cl.Invoke(ctx, []byte("hello"))
	if err != nil {
		return err
	}
	fmt.Printf("invoke(%q) -> %q\n", "hello", resp)

	// Asynchronous: Submit returns futures; the requests travel through
	// agreement together (pipelined), not one after the other.
	var calls []*pbft.Call
	for _, msg := range []string{"byzantine", "fault", "tolerance"} {
		calls = append(calls, cl.Submit(ctx, []byte(msg)))
	}
	for i, call := range calls {
		resp, err := call.Result()
		if err != nil {
			return err
		}
		fmt.Printf("call %d -> %q\n", i, resp)
	}

	// Concurrent: many goroutines may share one client.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := cl.Invoke(ctx, []byte(fmt.Sprintf("worker-%d", g))); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}

	for i, r := range replicas {
		info := r.Info()
		fmt.Printf("replica %d: view=%d executed=%d\n", i, info.View, info.Stats.Executed)
	}
	// The tracer saw every batch and commit across the group.
	fmt.Printf("metrics: %s\n", reg.Snapshot().Summary())

	// The flight recorder kept the most recent request timelines; print
	// the newest one's per-phase breakdown — the raw material for
	// debugging a slow request (see ARCHITECTURE.md, "Observability").
	d := rec.Dump()
	if len(d.Completed) > 0 {
		tl := d.Completed[len(d.Completed)-1]
		fmt.Printf("flight: client=%d ts=%d seq=%d end-to-end=%s\n",
			tl.Client, tl.Timestamp, tl.Seq, time.Duration(tl.EndToEnd))
		for _, seg := range tl.Segments {
			fmt.Printf("  %-18s %s\n", seg.Phase, time.Duration(seg.DurNs))
		}
	}
	return nil
}
