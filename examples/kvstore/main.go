// KV store: a replicated key-value service whose Application manages the
// raw state region directly — answering the paper's §3.2 question "what
// can a modern application do with just a pointer to a memory region?"
// the hard way, for contrast with the SQL abstraction (see the evoting
// example). The store serializes its map into the region after every
// mutation and re-reads it before every operation, so checkpointing,
// state transfer and rollback all just work.
//
//	go run ./examples/kvstore
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/pbft"
)

// kvApp replicates a map[string]string in the state region.
//
// Region layout: u32 entry count, then (u16 klen, key, u16 vlen, value)*.
// Every Execute deserializes and reserializes the whole map — a deliberate
// illustration of the state-management burden PBFT leaves to applications
// (§3.2); the SQL abstraction exists because this does not scale.
type kvApp struct {
	region *pbft.StateRegion
}

func (a *kvApp) AttachState(region *pbft.StateRegion) { a.region = region }

func (a *kvApp) load() map[string]string {
	m := make(map[string]string)
	var cnt [4]byte
	if _, err := a.region.ReadAt(cnt[:], 0); err != nil {
		return m
	}
	n := binary.BigEndian.Uint32(cnt[:])
	off := int64(4)
	buf := make([]byte, 2)
	for i := uint32(0); i < n; i++ {
		readStr := func() string {
			if _, err := a.region.ReadAt(buf, off); err != nil {
				return ""
			}
			l := int64(binary.BigEndian.Uint16(buf))
			off += 2
			s := make([]byte, l)
			if _, err := a.region.ReadAt(s, off); err != nil {
				return ""
			}
			off += l
			return string(s)
		}
		k := readStr()
		v := readStr()
		m[k] = v
	}
	return m
}

func (a *kvApp) store(m map[string]string) {
	// Serialize in sorted key order: replicas agree on state via region
	// digests, so the byte layout must be deterministic — Go map
	// iteration order would diverge the replicas (the determinism trap
	// of §2.5, one level down).
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := binary.BigEndian.AppendUint32(nil, uint32(len(m)))
	for _, k := range keys {
		v := m[k]
		out = binary.BigEndian.AppendUint16(out, uint16(len(k)))
		out = append(out, k...)
		out = binary.BigEndian.AppendUint16(out, uint16(len(v)))
		out = append(out, v...)
	}
	// WriteAt performs the modify notification PBFT requires before
	// state changes (§2.1).
	if _, err := a.region.WriteAt(out, 0); err != nil {
		panic(err) // region sized far beyond this demo's needs
	}
}

// Execute implements ops "set k v", "get k", "del k", "keys".
func (a *kvApp) Execute(op []byte, nd pbft.NonDetValues, readOnly bool) []byte {
	fields := strings.SplitN(string(op), " ", 3)
	m := a.load()
	switch fields[0] {
	case "set":
		if readOnly || len(fields) != 3 {
			return []byte("ERR")
		}
		m[fields[1]] = fields[2]
		a.store(m)
		return []byte("OK")
	case "del":
		if readOnly || len(fields) != 2 {
			return []byte("ERR")
		}
		delete(m, fields[1])
		a.store(m)
		return []byte("OK")
	case "get":
		if len(fields) != 2 {
			return []byte("ERR")
		}
		v, ok := m[fields[1]]
		if !ok {
			return []byte("(nil)")
		}
		return []byte(v)
	case "keys":
		return []byte(fmt.Sprint(len(m), " keys"))
	default:
		return []byte("ERR unknown op")
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const f = 1
	n := 3*f + 1
	net := pbft.NewNetwork(3)
	defer net.Close()

	opts := pbft.DefaultOptions()
	cfg := &pbft.Config{Opts: opts}
	keys := make([]*pbft.KeyPair, n)
	for i := 0; i < n; i++ {
		kp, err := pbft.GenerateKeyPair(nil)
		if err != nil {
			return err
		}
		keys[i] = kp
		cfg.Replicas = append(cfg.Replicas, pbft.NodeInfo{
			ID: uint32(i), Addr: fmt.Sprintf("replica-%d", i), PubKey: kp.Public(),
		})
	}
	ck, err := pbft.GenerateKeyPair(nil)
	if err != nil {
		return err
	}
	cfg.Clients = append(cfg.Clients, pbft.NodeInfo{ID: uint32(n), Addr: "client-0", PubKey: ck.Public()})

	replicas := make([]*pbft.Replica, n)
	for i := 0; i < n; i++ {
		conn, err := net.Listen(cfg.Replicas[i].Addr)
		if err != nil {
			return err
		}
		rep, err := pbft.NewReplica(cfg, uint32(i), keys[i], conn, &kvApp{})
		if err != nil {
			return err
		}
		rep.Start()
		replicas[i] = rep
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	conn, err := net.Listen("client-0")
	if err != nil {
		return err
	}
	cl, err := pbft.NewClient(cfg, uint32(n), ck, conn)
	if err != nil {
		return err
	}
	defer cl.Close()

	ops := []string{
		"set color blue",
		"set shape circle",
		"get color",
		"del color",
		"get color",
		"get shape",
		"keys",
	}
	for _, op := range ops {
		resp, err := cl.Invoke(context.Background(), []byte(op))
		if err != nil {
			return err
		}
		fmt.Printf("%-18s -> %s\n", op, resp)
	}

	// Reads can use the optimized read-only path (§2.1): no agreement,
	// the client collects a 2f+1 quorum of direct replies.
	resp, err := cl.InvokeReadOnly(context.Background(), []byte("get shape"))
	if err != nil {
		return err
	}
	fmt.Printf("%-18s -> %s (read-only path)\n", "get shape", resp)
	return nil
}
