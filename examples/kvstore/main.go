// KV store: a replicated key-value service whose Application manages the
// raw state region directly — answering the paper's §3.2 question "what
// can a modern application do with just a pointer to a memory region?"
// the hard way, for contrast with the SQL abstraction (see the evoting
// example).
//
// The store hashes keys onto fixed-size buckets, each a private byte
// range of the region, and implements pbft.Sharder with the bucket index
// as the conflict key: operations on different buckets have disjoint
// state footprints and commute, so the replica's sharded execution engine
// (Options.ExecShards) applies them concurrently while checkpointing,
// state transfer and rollback keep working unchanged. "keys" scans every
// bucket and is unkeyed — the engine runs it as a barrier.
//
//	go run ./examples/kvstore
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"

	"repro/pbft"
)

const (
	// numBuckets fixed-size buckets; each key lives in exactly one.
	numBuckets = 64
	// bucketSize bytes per bucket (one region page: bucket writes touch
	// exactly one checkpoint page).
	bucketSize = 4096
)

// kvApp replicates a bucketed map[string]string in the state region.
//
// Bucket layout: u16 entry count, then (u16 klen, key, u16 vlen, value)*
// in sorted key order — the byte layout must be deterministic because
// replicas agree on state via region digests (the determinism trap of
// §2.5, one level down).
//
// The fixed bucketing is the price of disjoint footprints: each bucket
// holds at most bucketSize bytes of entries, and a set that would
// overflow its bucket fails with ERR (the demo keeps it simple — a real
// store would chain overflow buckets from a free area, keeping the
// conflict key per chain).
type kvApp struct {
	region *pbft.StateRegion
}

func (a *kvApp) AttachState(region *pbft.StateRegion) { a.region = region }

// bucketOf hashes a key onto its bucket (FNV-1a; any fixed function
// works — it only has to be the same at every replica).
func bucketOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h % numBuckets
}

// Keys implements pbft.Sharder: the conflict key of a keyed operation is
// its bucket — never the user key, because two keys sharing a bucket
// share bytes and must serialize. "keys" touches every bucket: unkeyed,
// so the engine runs it as a barrier.
func (a *kvApp) Keys(op []byte) [][]byte {
	fields := strings.SplitN(string(op), " ", 3)
	switch fields[0] {
	case "set", "get", "del":
		if len(fields) < 2 {
			return nil
		}
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], bucketOf(fields[1]))
		return [][]byte{b[:]}
	}
	return nil
}

func (a *kvApp) loadBucket(b uint32) map[string]string {
	m := make(map[string]string)
	base := int64(b) * bucketSize
	buf := make([]byte, 2)
	if _, err := a.region.ReadAt(buf, base); err != nil {
		return m
	}
	n := binary.BigEndian.Uint16(buf)
	off := base + 2
	for i := uint16(0); i < n; i++ {
		readStr := func() string {
			if _, err := a.region.ReadAt(buf, off); err != nil {
				return ""
			}
			l := int64(binary.BigEndian.Uint16(buf))
			off += 2
			s := make([]byte, l)
			if _, err := a.region.ReadAt(s, off); err != nil {
				return ""
			}
			off += l
			return string(s)
		}
		k := readStr()
		v := readStr()
		m[k] = v
	}
	return m
}

func (a *kvApp) storeBucket(b uint32, m map[string]string) error {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := binary.BigEndian.AppendUint16(nil, uint16(len(m)))
	for _, k := range keys {
		v := m[k]
		out = binary.BigEndian.AppendUint16(out, uint16(len(k)))
		out = append(out, k...)
		out = binary.BigEndian.AppendUint16(out, uint16(len(v)))
		out = append(out, v...)
	}
	if len(out) > bucketSize {
		return fmt.Errorf("bucket %d overflow (%d bytes)", b, len(out))
	}
	// Zero-pad to the full bucket so stale tail bytes cannot linger in
	// the agreed state after deletes.
	out = append(out, make([]byte, bucketSize-len(out))...)
	// WriteAt performs the modify notification PBFT requires (§2.1).
	_, err := a.region.WriteAt(out, int64(b)*bucketSize)
	return err
}

// Execute implements ops "set k v", "get k", "del k", "keys".
func (a *kvApp) Execute(op []byte, nd pbft.NonDetValues, readOnly bool) []byte {
	fields := strings.SplitN(string(op), " ", 3)
	switch fields[0] {
	case "set":
		if readOnly || len(fields) != 3 {
			return []byte("ERR")
		}
		b := bucketOf(fields[1])
		m := a.loadBucket(b)
		m[fields[1]] = fields[2]
		if err := a.storeBucket(b, m); err != nil {
			return []byte("ERR " + err.Error())
		}
		return []byte("OK")
	case "del":
		if readOnly || len(fields) != 2 {
			return []byte("ERR")
		}
		b := bucketOf(fields[1])
		m := a.loadBucket(b)
		delete(m, fields[1])
		if err := a.storeBucket(b, m); err != nil {
			return []byte("ERR " + err.Error())
		}
		return []byte("OK")
	case "get":
		if len(fields) != 2 {
			return []byte("ERR")
		}
		v, ok := a.loadBucket(bucketOf(fields[1]))[fields[1]]
		if !ok {
			return []byte("(nil)")
		}
		return []byte(v)
	case "keys":
		total := 0
		for b := uint32(0); b < numBuckets; b++ {
			total += len(a.loadBucket(b))
		}
		return []byte(fmt.Sprint(total, " keys"))
	default:
		return []byte("ERR unknown op")
	}
}

func main() {
	if err := run(); err != nil {
		slog.Error("kvstore failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	const f = 1
	n := 3*f + 1
	net := pbft.NewNetwork(3)
	defer net.Close()

	// Four execution shards: operations on different buckets apply in
	// parallel behind the ordered commit stream.
	opts := pbft.DefaultOptions().WithExecShards(4)
	cfg := &pbft.Config{Opts: opts}
	keys := make([]*pbft.KeyPair, n)
	for i := 0; i < n; i++ {
		kp, err := pbft.GenerateKeyPair(nil)
		if err != nil {
			return err
		}
		keys[i] = kp
		cfg.Replicas = append(cfg.Replicas, pbft.NodeInfo{
			ID: uint32(i), Addr: fmt.Sprintf("replica-%d", i), PubKey: kp.Public(),
		})
	}
	ck, err := pbft.GenerateKeyPair(nil)
	if err != nil {
		return err
	}
	cfg.Clients = append(cfg.Clients, pbft.NodeInfo{ID: uint32(n), Addr: "client-0", PubKey: ck.Public()})

	replicas := make([]*pbft.Replica, n)
	for i := 0; i < n; i++ {
		conn, err := net.Listen(cfg.Replicas[i].Addr)
		if err != nil {
			return err
		}
		rep, err := pbft.NewReplica(cfg, uint32(i), keys[i], conn, &kvApp{})
		if err != nil {
			return err
		}
		rep.Start()
		replicas[i] = rep
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	conn, err := net.Listen("client-0")
	if err != nil {
		return err
	}
	cl, err := pbft.NewClient(cfg, uint32(n), ck, conn)
	if err != nil {
		return err
	}
	defer cl.Close()

	ops := []string{
		"set color blue",
		"set shape circle",
		"get color",
		"del color",
		"get color",
		"get shape",
		"keys",
	}
	for _, op := range ops {
		resp, err := cl.Invoke(context.Background(), []byte(op))
		if err != nil {
			return err
		}
		fmt.Printf("%-18s -> %s\n", op, resp)
	}

	// Reads can use the optimized read-only path (§2.1): no agreement,
	// the client collects a 2f+1 quorum of direct replies. Keyed reads
	// run on their bucket's shard, off the replica's protocol loop.
	resp, err := cl.InvokeReadOnly(context.Background(), []byte("get shape"))
	if err != nil {
		return err
	}
	fmt.Printf("%-18s -> %s (read-only path)\n", "get shape", resp)
	return nil
}
