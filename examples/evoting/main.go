// E-voting: the paper's motivating application (§1). A replicated SQL
// database (the §3.2 state abstraction) records votes; voters join
// dynamically with credentials (§3.1), cast a ballot, and later anyone
// can tally. There is no centralized component: every vote is totally
// ordered by PBFT across four replicas and stored with ACID semantics.
//
//	go run ./examples/evoting
package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"repro/pbft"
	"repro/sqlstate"
)

// credentials is the application-level authorization of §3.1: the Join
// identification buffer is "voter:password"; the principal is the voter
// name, so one voter holds at most one live session.
var credentials = map[string]string{
	"alice": "a-pass",
	"bob":   "b-pass",
	"carol": "c-pass",
	"dave":  "d-pass",
	"erin":  "e-pass",
}

func authorize(appAuth []byte) (string, bool) {
	parts := strings.SplitN(string(appAuth), ":", 2)
	if len(parts) != 2 {
		return "", false
	}
	want, ok := credentials[parts[0]]
	return parts[0], ok && want == parts[1]
}

func main() {
	if err := run(); err != nil {
		slog.Error("evoting failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	const f = 1
	n := 3*f + 1

	net := pbft.NewNetwork(7)
	defer net.Close()

	opts := pbft.DefaultOptions().Robust() // stringent security: no MACs, no big requests
	opts.DynamicClients = true
	cfg := &pbft.Config{Opts: opts}

	dataDir, err := os.MkdirTemp("", "evoting-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	replicaKeys := make([]*pbft.KeyPair, n)
	for i := 0; i < n; i++ {
		kp, err := pbft.GenerateKeyPair(nil)
		if err != nil {
			return err
		}
		replicaKeys[i] = kp
		cfg.Replicas = append(cfg.Replicas, pbft.NodeInfo{
			ID:     uint32(i),
			Addr:   fmt.Sprintf("replica-%d", i),
			PubKey: kp.Public(),
		})
	}

	replicas := make([]*pbft.Replica, n)
	for i := 0; i < n; i++ {
		conn, err := net.Listen(cfg.Replicas[i].Addr)
		if err != nil {
			return err
		}
		app := sqlstate.NewApp(sqlstate.Options{
			DiskDir:   fmt.Sprintf("%s/replica-%d", dataDir, i),
			Durable:   true, // a vote, once acknowledged, survives crashes
			Authorize: authorize,
			InitSQL: []string{
				"CREATE TABLE IF NOT EXISTS votes (voter TEXT, choice TEXT, ts INTEGER, receipt INTEGER)",
			},
		})
		rep, err := pbft.NewReplica(cfg, uint32(i), replicaKeys[i], conn, app)
		if err != nil {
			return err
		}
		rep.Start()
		replicas[i] = rep
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	// Each voter joins with credentials, casts one ballot, and leaves.
	ballots := map[string]string{
		"alice": "fizz", "bob": "buzz", "carol": "fizz", "dave": "fizz", "erin": "buzz",
	}
	for voter, choice := range ballots {
		if err := castVote(net, cfg, voter, credentials[voter], choice); err != nil {
			return fmt.Errorf("voter %s: %w", voter, err)
		}
	}

	// A voter with bad credentials is refused by the application-level
	// authorization during the join (§3.1).
	if err := castVote(net, cfg, "mallory", "guessed", "buzz"); err == nil {
		return fmt.Errorf("mallory must not be able to vote")
	} else {
		fmt.Printf("mallory rejected: %v\n", err)
	}

	// Tally through the ordered path (linearizable).
	return tally(net, cfg)
}

// castVote joins, inserts the ballot and leaves — the client lifecycle
// of Figure 2.
func castVote(net *pbft.Network, cfg *pbft.Config, voter, password, choice string) error {
	kp, err := pbft.GenerateKeyPair(nil)
	if err != nil {
		return err
	}
	conn, err := net.Listen("voter-" + voter)
	if err != nil {
		return err
	}
	cl, err := pbft.NewDynamicClient(cfg, kp, conn, pbft.WithMaxRetries(4))
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := cl.Join(context.Background(), []byte(voter+":"+password)); err != nil {
		return err
	}
	resp, err := cl.Invoke(context.Background(), sqlstate.EncodeExec(
		"INSERT INTO votes (voter, choice, ts, receipt) VALUES (?, ?, now(), random())",
		sqlstate.Text(voter), sqlstate.Text(choice)))
	if err != nil {
		return err
	}
	if _, err := sqlstate.DecodeResponse(resp); err != nil {
		return err
	}
	fmt.Printf("%s voted (session %d)\n", voter, cl.ID())
	return cl.Leave(context.Background())
}

func tally(net *pbft.Network, cfg *pbft.Config) error {
	kp, err := pbft.GenerateKeyPair(nil)
	if err != nil {
		return err
	}
	conn, err := net.Listen("auditor")
	if err != nil {
		return err
	}
	cl, err := pbft.NewDynamicClient(cfg, kp, conn)
	if err != nil {
		return err
	}
	defer cl.Close()
	if err := cl.Join(context.Background(), []byte("alice:a-pass")); err != nil { // auditors use their own credentials
		return err
	}
	for _, choice := range []string{"fizz", "buzz"} {
		resp, err := cl.Invoke(context.Background(), sqlstate.EncodeQuery(
			"SELECT count(*) AS votes FROM votes WHERE choice = ?", sqlstate.Text(choice)))
		if err != nil {
			return err
		}
		r, err := sqlstate.DecodeResponse(resp)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d votes\n", choice, r.Rows.Data[0][0].AsInt())
	}
	return nil
}
