// Fault demo: the robustness observations of the paper's §2.3–2.4, made
// visible on a live cluster.
//
//  1. §2.4 — with the big-request optimization on (the library default),
//     losing the single client→replica transmission of a request body
//     wedges that replica: agreement completes but execution cannot, and
//     only the next checkpoint's state transfer unwedges it.
//
//  2. §2.3 — a restarted replica holds no client session keys (they are
//     transient, like the original's authenticators), so it cannot
//     authenticate logged requests until the clients' blind periodic
//     session-hello retransmission arrives.
//
//     go run ./examples/faultdemo
package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/transport"
	"repro/pbft"
)

func main() {
	if err := run(); err != nil {
		slog.Error("faultdemo failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	if err := wedgeDemo(); err != nil {
		return err
	}
	fmt.Println()
	return recoveryDemo()
}

func wedgeDemo() error {
	fmt.Println("== §2.4: one lost UDP packet wedges a replica (big requests) ==")
	opts := pbft.DefaultOptions() // AllBig on: the default the paper critiques
	opts.CheckpointInterval = 8
	opts.StateSize = 1 << 20
	opts.ViewChangeTimeout = 5 * time.Second

	c, err := harness.NewCluster(harness.ClusterOptions{
		Opts:       opts,
		NumClients: 1,
		Seed:       99,
		App:        harness.NewCounterFactory(),
	})
	if err != nil {
		return err
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		return err
	}
	defer cl.Close()

	if _, err := cl.Invoke(context.Background(), []byte("inc")); err != nil {
		return err
	}
	fmt.Println("request 1 executed everywhere")

	// Drop exactly the client→replica-3 body transmissions.
	c.Net.SetLinkFaults(harness.ClientAddr(0), harness.ReplicaAddr(3), transport.Faults{Partitioned: true})
	if _, err := cl.Invoke(context.Background(), []byte("inc")); err != nil {
		return err
	}
	c.Net.ClearLinkFaults(harness.ClientAddr(0), harness.ReplicaAddr(3))
	time.Sleep(300 * time.Millisecond)
	info := c.Replicas[3].Info()
	fmt.Printf("request 2: replica 3 wedged=%v lastExec=%d (agreement finished, body missing)\n",
		info.Stats.WedgedNow, info.LastExec)

	// Push past the checkpoint interval; state transfer unwedges it.
	for i := 0; i < 10; i++ {
		if _, err := cl.Invoke(context.Background(), []byte("inc")); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		info = c.Replicas[3].Info()
		if !info.Stats.WedgedNow && info.Stats.StateTransfers > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("after next checkpoint: replica 3 wedged=%v lastExec=%d stateTransfers=%d\n",
		info.Stats.WedgedNow, info.LastExec, info.Stats.StateTransfers)
	return nil
}

func recoveryDemo() error {
	fmt.Println("== §2.3: restarted replica stalls until the session-hello retransmission ==")
	opts := pbft.DefaultOptions() // MACs on: the configuration with the pitfall
	opts.CheckpointInterval = 8
	opts.StateSize = 1 << 20
	opts.HelloInterval = 1 * time.Second // exaggerated for visibility
	opts.ViewChangeTimeout = 10 * time.Second

	c, err := harness.NewCluster(harness.ClusterOptions{
		Opts:       opts,
		NumClients: 1,
		Seed:       100,
		App:        harness.NewCounterFactory(),
	})
	if err != nil {
		return err
	}
	defer c.Stop()
	cl, err := c.Client(0)
	if err != nil {
		return err
	}
	defer cl.Close()

	for i := 0; i < 20; i++ {
		if _, err := cl.Invoke(context.Background(), []byte("inc")); err != nil {
			return err
		}
	}
	fmt.Println("20 requests executed; crashing replica 3")
	c.StopReplica(3)
	time.Sleep(100 * time.Millisecond)
	restart := time.Now()
	if err := c.RestartReplica(3); err != nil {
		return err
	}
	// Keep the service busy so the replica has something to catch up to.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			if _, err := cl.Invoke(context.Background(), []byte("inc")); err != nil {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	// State transfer alone can catch the replica up (it needs no client
	// authenticators) — the §2.3 stall shows in *direct* execution,
	// which requires authenticating client request bodies and therefore
	// waits for the blind session-hello retransmission.
	var caughtUp, executing time.Duration
	for executing == 0 {
		info := c.Replicas[3].Info()
		if caughtUp == 0 && info.LastExec > 20 {
			caughtUp = time.Since(restart)
		}
		if info.Stats.Executed > 0 {
			executing = time.Since(restart)
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	<-done
	fmt.Printf("replica 3 state caught up after %v (state transfer; no authenticators needed)\n",
		caughtUp.Round(10*time.Millisecond))
	fmt.Printf("replica 3 executing requests itself after %v — tracks the %v hello interval;\n",
		executing.Round(10*time.Millisecond), opts.HelloInterval)
	fmt.Println("lowering the retransmission timeout trades network load for recovery time (§2.3)")
	return nil
}
