package repro

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
)

// BenchmarkExecShards measures the sharded execution engine on the
// keyed-counter workload (mostly non-conflicting operations, a few
// shared hot keys). Each op is one client request against a live 4-replica
// cluster; 12 parallel closed-loop clients drive load.
//
// On a single-core host the shard counts above 1 measure pure scheduling
// overhead (the acceptance bar is "no regression"); on a multi-core host
// the sharded configurations spread application work across cores.
func BenchmarkExecShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			lc := harness.LibConfig{Static: true, MACs: true, AllBig: true, Batch: true}
			_, pool := benchCluster(b, lc, harness.NewCounterFactory(), 12,
				func(o *core.Options) { o.ExecShards = shards })
			w := &harness.KeyedCounterWorkload{}
			// A global op counter assigns each call a distinct
			// (client, iteration) stream — the pooled workers'
			// private counters would all start at 0 and walk the
			// keyset in lockstep, colliding on every key.
			var ops atomic.Int64
			runClientBench(b, pool,
				func(int) []byte {
					n := int(ops.Add(1))
					return w.Op(n%12, n/12)
				},
				w.Check)
		})
	}
}
